//===- analysis/Dominators.h - Dominator tree & dominance frontiers ------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm, plus
/// dominance frontiers (Cytron et al.) used by mem2reg's phi placement.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ANALYSIS_DOMINATORS_H
#define IPAS_ANALYSIS_DOMINATORS_H

#include "ir/Function.h"

#include <map>
#include <vector>

namespace ipas {

class DominatorTree {
public:
  explicit DominatorTree(const Function &F);

  /// Immediate dominator; null for the entry block and unreachable blocks.
  BasicBlock *idom(const BasicBlock *BB) const;

  /// True when \p A dominates \p B (reflexive). Unreachable blocks are
  /// dominated by nothing and dominate nothing (except themselves).
  bool dominates(const BasicBlock *A, const BasicBlock *B) const;

  /// True when instruction \p Def dominates the use site (\p User,
  /// \p OperandIndex); phi uses are checked at the incoming block's exit.
  bool dominatesUse(const Instruction *Def, const Instruction *User,
                    unsigned OperandIndex) const;

  /// Dominator-tree children of \p BB.
  const std::vector<BasicBlock *> &children(const BasicBlock *BB) const;

  /// Dominance frontier of \p BB.
  const std::vector<BasicBlock *> &frontier(const BasicBlock *BB) const;

  bool isReachable(const BasicBlock *BB) const;

  /// Reverse post-order of the reachable blocks.
  const std::vector<BasicBlock *> &reversePostOrder() const { return RPO; }

  const Function &function() const { return F; }

private:
  struct Node {
    int RpoIndex = -1; ///< -1 = unreachable.
    BasicBlock *Idom = nullptr;
    std::vector<BasicBlock *> Children;
    std::vector<BasicBlock *> Frontier;
  };

  const Node &node(const BasicBlock *BB) const;

  const Function &F;
  std::vector<BasicBlock *> RPO;
  std::map<const BasicBlock *, Node> Nodes;
  static const std::vector<BasicBlock *> Empty;
};

} // namespace ipas

#endif // IPAS_ANALYSIS_DOMINATORS_H
