//===- analysis/FunctionSummary.cpp ---------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/FunctionSummary.h"

#include "analysis/Slicing.h"
#include "ir/Intrinsics.h"

#include <algorithm>
#include <deque>
#include <set>

using namespace ipas;

//===----------------------------------------------------------------------===//
// Content hashing
//===----------------------------------------------------------------------===//

namespace {

/// FNV-1a accumulator. Local rather than shared with obs/BinCodec.h so
/// the canonical body-hash definition lives in one translation unit and
/// cannot drift with serialization-layer changes.
class HashAcc {
public:
  void u8(uint8_t V) { mix(V); }
  void u32(uint32_t V) {
    for (int I = 0; I != 4; ++I)
      mix(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I != 8; ++I)
      mix(static_cast<uint8_t>(V >> (8 * I)));
  }
  void str(const std::string &S) {
    u64(S.size());
    for (char C : S)
      mix(static_cast<uint8_t>(C));
  }
  uint64_t value() const { return H; }

private:
  void mix(uint8_t B) {
    H ^= B;
    H *= 1099511628211ull;
  }
  uint64_t H = 14695981039346656037ull;
};

/// True for the trap-free math primitives whose only effect is their
/// result value.
bool isPureMathIntrinsic(Intrinsic Id) {
  switch (Id) {
  case Intrinsic::Sqrt:
  case Intrinsic::Fabs:
  case Intrinsic::Sin:
  case Intrinsic::Cos:
  case Intrinsic::Exp:
  case Intrinsic::Log:
  case Intrinsic::Pow:
  case Intrinsic::Floor:
  case Intrinsic::FMin:
  case Intrinsic::FMax:
  case Intrinsic::IMin:
  case Intrinsic::IMax:
    return true;
  default:
    return false;
  }
}

void hashOperand(HashAcc &H, const Value *V,
                 const std::map<const Value *, uint32_t> &Ordinal) {
  switch (V->kind()) {
  case ValueKind::ConstantInt:
    H.u8(1);
    H.u8(static_cast<uint8_t>(V->type().kind()));
    H.u64(static_cast<uint64_t>(cast<ConstantInt>(V)->value()));
    return;
  case ValueKind::ConstantFP: {
    H.u8(2);
    double D = cast<ConstantFP>(V)->value();
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(D), "double is not 64-bit");
    __builtin_memcpy(&Bits, &D, sizeof(Bits));
    H.u64(Bits);
    return;
  }
  case ValueKind::Argument:
    H.u8(3);
    H.u32(cast<Argument>(V)->index());
    return;
  case ValueKind::Instruction:
    H.u8(4);
    H.u32(Ordinal.at(V));
    return;
  }
}

} // namespace

uint64_t ipas::hashFunctionBody(const Function &F) {
  HashAcc H;
  H.u8(static_cast<uint8_t>(F.returnType().kind()));
  H.u32(F.numArgs());
  for (unsigned I = 0, E = F.numArgs(); I != E; ++I)
    H.u8(static_cast<uint8_t>(F.arg(I)->type().kind()));

  // Function-local instruction ordinals, block-major. Ids are excluded on
  // purpose: renumber() shifts them module-wide when *other* functions
  // change, which must not invalidate this function's hash.
  std::map<const Value *, uint32_t> Ordinal;
  uint32_t Next = 0;
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      Ordinal[I] = Next++;

  uint32_t NumBlocks = 0;
  for (const BasicBlock *BB : F) {
    (void)BB;
    ++NumBlocks;
  }
  H.u32(NumBlocks);

  for (const BasicBlock *BB : F) {
    H.u8(0xBB);
    H.u32(static_cast<uint32_t>(F.indexOf(BB)));
    H.u64(BB->size());
    for (const Instruction *I : *BB) {
      H.u8(static_cast<uint8_t>(I->opcode()));
      H.u8(static_cast<uint8_t>(I->type().kind()));
      H.u8(static_cast<uint8_t>(I->dupRole()));
      H.u32(I->numOperands());
      for (unsigned K = 0, E = I->numOperands(); K != E; ++K)
        hashOperand(H, I->operand(K), Ordinal);

      switch (I->opcode()) {
      case Opcode::Call: {
        const auto *CI = cast<CallInst>(I);
        H.u8(static_cast<uint8_t>(CI->intrinsicId()));
        // Direct callees by *name*: renaming or retargeting a call edits
        // the caller; the callee's own body changes are the reachable
        // hash's job.
        H.str(CI->callee() ? CI->callee()->name() : std::string());
        break;
      }
      case Opcode::ICmp:
      case Opcode::FCmp:
        H.u8(static_cast<uint8_t>(cast<CmpInst>(I)->predicate()));
        break;
      case Opcode::Alloca:
        H.u64(cast<AllocaInst>(I)->slotCount());
        break;
      case Opcode::Phi: {
        const auto *Phi = cast<PhiInst>(I);
        for (unsigned K = 0, E = Phi->numIncoming(); K != E; ++K)
          H.u32(static_cast<uint32_t>(F.indexOf(Phi->incomingBlock(K))));
        break;
      }
      case Opcode::Br:
        H.u32(static_cast<uint32_t>(F.indexOf(cast<BranchInst>(I)->target())));
        break;
      case Opcode::CondBr: {
        const auto *CB = cast<CondBranchInst>(I);
        H.u32(static_cast<uint32_t>(F.indexOf(CB->trueTarget())));
        H.u32(static_cast<uint32_t>(F.indexOf(CB->falseTarget())));
        break;
      }
      default:
        break;
      }
    }
  }
  return H.value();
}

//===----------------------------------------------------------------------===//
// Per-function value-flow engine
//===----------------------------------------------------------------------===//

namespace {

/// Mutable per-value state during the fixpoint.
struct NodeState {
  unsigned Mask = SocSinkNone;
  BitSet Sinks; ///< Distinct sink instructions, by value number.
  unsigned Dist = SocInstructionInfo::NoSink;
};

/// One sink contribution at a user: the mask (possibly several bits, for
/// summarized call sites), the instruction standing for the sink, and
/// the distance contribution (NoSink = none, used by the return
/// pseudo-bit which carries flow but no sink distance).
struct DirectSink {
  unsigned Mask;
  const Instruction *At;
  unsigned Dist;
};

constexpr unsigned NoSink = SocInstructionInfo::NoSink;

unsigned satAdd(unsigned D, unsigned Inc) {
  return D >= NoSink - Inc ? NoSink - 1 : D + Inc;
}

ArgChannel conservativeChannel() {
  ArgChannel Ch;
  Ch.SinkMask = SocSinkCallArgument;
  Ch.FlowsToReturn = true;
  Ch.MinSinkDistance = 1;
  return Ch;
}

} // namespace

FunctionSocAnalysis ipas::analyzeFunctionFlow(const Function &F,
                                              const ModuleSummaries *Summaries,
                                              bool RetIsSink) {
  ValueNumbering N(F);

  // Memory summary: pointer root -> loads that may read it.
  std::map<const Value *, std::vector<const Instruction *>> LoadsOfRoot;
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      if (const auto *Load = dyn_cast<LoadInst>(I))
        if (const Value *Root = pointerRoot(Load->pointer()))
          LoadsOfRoot[Root].push_back(Load);

  std::map<const Value *, std::vector<const Value *>> Succs;
  std::map<const Value *, std::vector<DirectSink>> Direct;
  std::map<const Value *, std::vector<const Value *>> Preds;

  auto AddEdge = [&](const Value *From, const Value *To) {
    Succs[From].push_back(To);
    Preds[To].push_back(From);
  };

  auto ScanValue = [&](const Value *V) {
    for (const Instruction *U : V->users()) {
      switch (U->opcode()) {
      case Opcode::Store: {
        const auto *St = cast<StoreInst>(U);
        Direct[V].push_back({SocSinkStore, U, 1});
        if (V == St->pointer())
          Direct[V].push_back({SocSinkTrapCapable, U, 1});
        if (const Value *Root = pointerRoot(St->pointer())) {
          auto It = LoadsOfRoot.find(Root);
          if (It != LoadsOfRoot.end())
            for (const Instruction *Load : It->second)
              AddEdge(V, Load);
        }
        break;
      }
      case Opcode::Call: {
        const auto *CI = cast<CallInst>(U);
        if (!Summaries) {
          // Intraprocedural model: every call is an opaque escape.
          Direct[V].push_back({SocSinkCallArgument, U, 1});
          if (U->producesValue())
            AddEdge(V, U);
          break;
        }
        if (CI->isIntrinsicCall()) {
          if (isPureMathIntrinsic(CI->intrinsicId())) {
            // Trap-free, effect-free: the argument only corrupts the
            // result value.
            if (U->producesValue())
              AddEdge(V, U);
          } else {
            // malloc/free/rand/MPI keep the conservative barrier;
            // malloc and free can additionally trap on a corrupted
            // operand (negative size, wild pointer).
            unsigned Mask = SocSinkCallArgument;
            if (CI->intrinsicId() == Intrinsic::Malloc ||
                CI->intrinsicId() == Intrinsic::Free)
              Mask |= SocSinkTrapCapable;
            Direct[V].push_back({Mask, U, 1});
            if (U->producesValue())
              AddEdge(V, U);
          }
          break;
        }
        // Direct call: substitute the callee's per-argument channels.
        // users() lists U once per operand slot, so duplicate
        // contributions for repeated arguments are harmless unions.
        const FunctionSummary &SG = Summaries->summary(CI->callee());
        for (unsigned K = 0, E = CI->numArgs(); K != E; ++K) {
          if (CI->arg(K) != V)
            continue;
          ArgChannel Ch = K < SG.Args.size() ? SG.Args[K]
                                             : conservativeChannel();
          if (Ch.SinkMask != SocSinkNone) {
            unsigned D = Ch.MinSinkDistance == NoSink
                             ? 1
                             : satAdd(Ch.MinSinkDistance, 1);
            Direct[V].push_back({Ch.SinkMask, U, D});
          }
          if (Ch.FlowsToReturn && U->producesValue())
            AddEdge(V, U);
        }
        break;
      }
      case Opcode::Ret:
        if (RetIsSink)
          Direct[V].push_back({SocSinkReturn, U, 1});
        else
          Direct[V].push_back({SocFlowsToReturnBit, U, NoSink});
        break;
      case Opcode::CondBr:
        Direct[V].push_back({SocSinkControlFlow, U, 1});
        break;
      case Opcode::Check:
        Direct[V].push_back({SocSinkCheck, U, 1});
        break;
      case Opcode::Load:
        Direct[V].push_back({SocSinkTrapCapable, U, 1});
        AddEdge(V, U);
        break;
      case Opcode::SDiv:
      case Opcode::SRem:
        if (U->numOperands() == 2 && U->operand(1) == V)
          Direct[V].push_back({SocSinkTrapCapable, U, 1});
        AddEdge(V, U);
        break;
      default:
        if (U->producesValue())
          AddEdge(V, U);
        break;
      }
    }
  };

  for (unsigned I = 0, E = F.numArgs(); I != E; ++I)
    ScanValue(F.arg(I));
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      if (I->producesValue())
        ScanValue(I);

  // Backward fixpoint, identical in shape to SocPropagation's: monotone
  // over a finite lattice, so the worklist terminates.
  std::map<const Value *, NodeState> State;
  auto StateOf = [&](const Value *V) -> NodeState & {
    auto It = State.find(V);
    if (It == State.end())
      It = State.emplace(V, NodeState{SocSinkNone, N.makeSet(), NoSink})
               .first;
    return It->second;
  };

  std::deque<const Value *> Worklist;
  std::set<const Value *> OnList;
  auto Enqueue = [&](const Value *V) {
    if (OnList.insert(V).second)
      Worklist.push_back(V);
  };

  for (unsigned I = 0, E = N.size(); I != E; ++I)
    Enqueue(N.valueAt(I));

  while (!Worklist.empty()) {
    const Value *V = Worklist.front();
    Worklist.pop_front();
    OnList.erase(V);

    NodeState New{SocSinkNone, N.makeSet(), NoSink};
    auto DirIt = Direct.find(V);
    if (DirIt != Direct.end())
      for (const DirectSink &S : DirIt->second) {
        New.Mask |= S.Mask;
        if (S.Mask & ~SocFlowsToReturnBit) {
          New.Sinks.set(N.indexOf(S.At));
          if (S.Dist != NoSink)
            New.Dist = std::min(New.Dist, S.Dist);
        }
      }
    auto SuccIt = Succs.find(V);
    if (SuccIt != Succs.end())
      for (const Value *S : SuccIt->second) {
        const NodeState &SS = StateOf(S);
        New.Mask |= SS.Mask;
        New.Sinks.unionWith(SS.Sinks);
        if (SS.Dist != NoSink)
          New.Dist = std::min(New.Dist, satAdd(SS.Dist, 1));
      }

    NodeState &Cur = StateOf(V);
    if (New.Mask == Cur.Mask && New.Dist == Cur.Dist &&
        New.Sinks == Cur.Sinks)
      continue;
    Cur = std::move(New);
    auto PredIt = Preds.find(V);
    if (PredIt != Preds.end())
      for (const Value *P : PredIt->second)
        Enqueue(P);
  }

  FunctionSocAnalysis Out;
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB) {
      if (!I->producesValue())
        continue;
      const NodeState &S = StateOf(I);
      SocInstructionInfo &R = Out.Info[I];
      R.SinkMask = S.Mask & ~SocFlowsToReturnBit;
      R.SinkCount = S.Sinks.count();
      R.MinSinkDistance = S.Dist;
    }
  Out.Args.resize(F.numArgs());
  for (unsigned I = 0, E = F.numArgs(); I != E; ++I) {
    const NodeState &S = StateOf(F.arg(I));
    ArgChannel &Ch = Out.Args[I];
    Ch.SinkMask = S.Mask & ~SocFlowsToReturnBit;
    Ch.FlowsToReturn = (S.Mask & SocFlowsToReturnBit) != 0;
    Ch.MinSinkDistance = S.Dist;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// ModuleSummaries
//===----------------------------------------------------------------------===//

ModuleSummaries::ModuleSummaries(const Module &M, const CallGraph &CG)
    : CG(CG) {
  for (const Function *F : M) {
    FunctionSummary &S = Summaries[F];
    S.ContentHash = hashFunctionBody(*F);
    S.Args.assign(F->numArgs(), ArgChannel{});
  }

  // Bottom-up over the SCC condensation. Members of a recursive SCC
  // start at bottom (all-benign channels) and iterate to the least
  // fixpoint; masks and flags only grow and distances only shrink, so
  // the loop terminates.
  for (const std::vector<const Function *> &Scc : CG.sccs()) {
    bool Recursive = Scc.size() > 1 || CG.isRecursive(Scc.front());
    while (true) {
      bool Changed = false;
      for (const Function *F : Scc) {
        FunctionSocAnalysis R =
            analyzeFunctionFlow(*F, this, /*RetIsSink=*/false);
        FunctionSummary &S = Summaries[F];
        if (R.Args != S.Args) {
          S.Args = std::move(R.Args);
          Changed = true;
        }
      }
      if (!Recursive || !Changed)
        break;
    }
  }

  // Reachable hash: combine the reachable set's content hashes in sorted
  // order, so the value depends on the set, not on traversal or module
  // order.
  for (const Function *F : M) {
    std::vector<uint64_t> Hashes;
    for (const Function *G : CG.reachableFrom(F))
      Hashes.push_back(Summaries[G].ContentHash);
    std::sort(Hashes.begin(), Hashes.end());
    HashAcc H;
    H.u64(Hashes.size());
    for (uint64_t X : Hashes)
      H.u64(X);
    ReachableHashes[F] = H.value();
  }
}

const FunctionSummary &ModuleSummaries::summary(const Function *F) const {
  auto It = Summaries.find(F);
  assert(It != Summaries.end() && "function has no summary");
  return It->second;
}

uint64_t ModuleSummaries::reachableHash(const Function *F) const {
  auto It = ReachableHashes.find(F);
  assert(It != ReachableHashes.end() && "function has no reachable hash");
  return It->second;
}
