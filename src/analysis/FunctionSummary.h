//===- analysis/FunctionSummary.h - Compositional SOC summaries -----------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-function SOC-sensitivity summaries, in the FastFlip style
/// (PAPERS.md): for each formal argument, which sink kinds does a
/// corruption of that argument reach *inside the callee's subtree*, and
/// can it corrupt the returned value? Summaries are computed bottom-up
/// over the CallGraph's SCC condensation — each function is analyzed
/// with its callees' summaries substituted at call sites, and recursive
/// SCCs iterate to a fixpoint over the finite monotone sink lattice.
///
/// The summary-aware analysis sharpens two call cases that the
/// intraprocedural SocPropagation treats as opaque barriers:
///
///  - direct calls: a corrupted argument matters only as far as the
///    callee's channel says — an argument that feeds a dead chain in the
///    callee is provably benign at every call site;
///  - pure math intrinsics (sqrt, sin, fmin, ...): these trap-free
///    primitives corrupt nothing but their own result, so the argument
///    gets a value edge to the call result instead of an escape sink.
///
/// Everything else (malloc/free, rand, MPI) keeps the conservative
/// CallArgument barrier.
///
/// Each summary is keyed by a canonical content hash of the function
/// body: names and debug locations are excluded, so whitespace- and
/// comment-only source edits hash identically, while any change to
/// opcodes, operand shape, constants, or callee names produces a new
/// hash. The incremental campaign driver (fault/Incremental.h) uses
/// (content hash, reachable-set hash) as its invalidation key.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ANALYSIS_FUNCTIONSUMMARY_H
#define IPAS_ANALYSIS_FUNCTIONSUMMARY_H

#include "analysis/CallGraph.h"
#include "analysis/SocPropagation.h"

#include <cstdint>
#include <map>
#include <vector>

namespace ipas {

/// Internal pseudo-sink bit used while computing summaries: "corruption
/// reaches the function's return value". Deliberately outside the
/// SocSinkKind range; it never appears in a published SinkMask — at call
/// sites it turns into a value edge from argument to call result, and
/// for the entry function it becomes a real SocSinkReturn.
constexpr unsigned SocFlowsToReturnBit = 1u << 30;

/// What one corrupted formal argument can do inside the callee subtree.
struct ArgChannel {
  unsigned SinkMask = SocSinkNone; ///< Real SocSinkKind bits reached.
  bool FlowsToReturn = false;      ///< Can corrupt the returned value.
  unsigned MinSinkDistance = SocInstructionInfo::NoSink;

  bool operator==(const ArgChannel &O) const {
    return SinkMask == O.SinkMask && FlowsToReturn == O.FlowsToReturn &&
           MinSinkDistance == O.MinSinkDistance;
  }
};

/// Summary of one function: per-argument channels plus the hashes that
/// key incremental reuse.
struct FunctionSummary {
  uint64_t ContentHash = 0;
  std::vector<ArgChannel> Args; ///< Indexed by argument position.
};

/// Canonical content hash of \p F's body: FNV-1a over signature, block
/// structure, opcodes, operand shape (constants by bits, arguments by
/// index, instructions by position), predicates, intrinsic ids, callee
/// names, and branch targets. Excludes value names and debug locations,
/// so formatting-only source edits are invisible; excludes instruction
/// ids, so the hash is independent of module-wide renumbering.
uint64_t hashFunctionBody(const Function &F);

/// Bottom-up summary computation for a whole module.
class ModuleSummaries {
public:
  ModuleSummaries(const Module &M, const CallGraph &CG);

  const FunctionSummary &summary(const Function *F) const;

  /// Content hash of \p F alone.
  uint64_t contentHash(const Function *F) const {
    return summary(F).ContentHash;
  }

  /// Combined content hash over every function reachable from \p F
  /// (including \p F), order-independent. Changes when any function the
  /// analysis of \p F could depend on changes.
  uint64_t reachableHash(const Function *F) const;

  const CallGraph &callGraph() const { return CG; }

private:
  friend struct SummaryEngineAccess;
  const CallGraph &CG;
  std::map<const Function *, FunctionSummary> Summaries;
  std::map<const Function *, uint64_t> ReachableHashes;
};

/// Result of the summary-aware per-function value-flow analysis.
struct FunctionSocAnalysis {
  std::map<const Instruction *, SocInstructionInfo> Info;
  std::vector<ArgChannel> Args;
};

/// Analyzes one function's value flow. With \p Summaries, direct calls
/// substitute the callee's argument channels and pure math intrinsics
/// become value edges; without, every call is the conservative
/// CallArgument barrier (the intraprocedural model). When \p RetIsSink,
/// reaching the return value is a real SocSinkReturn; otherwise it is
/// tracked separately and surfaces as ArgChannel::FlowsToReturn /
/// SocFlowsToReturnBit (the mode used while *building* summaries).
FunctionSocAnalysis analyzeFunctionFlow(const Function &F,
                                        const ModuleSummaries *Summaries,
                                        bool RetIsSink);

} // namespace ipas

#endif // IPAS_ANALYSIS_FUNCTIONSUMMARY_H
