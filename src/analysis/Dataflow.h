//===- analysis/Dataflow.h - Worklist dataflow framework ------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic iterative (worklist) dataflow framework over the SSA IR's CFG,
/// in the textbook mold: a problem declares its direction (forward or
/// backward), its meet operator (union for may-problems, intersection for
/// must-problems), boundary and interior initial states, and a per-block
/// transfer function; the solver iterates block states to a fixpoint in a
/// reverse-post-order worklist.
///
/// Facts are bit sets over a dense per-function value numbering (arguments
/// first, then instructions in layout order). Two concrete instances ship
/// with the framework:
///
///  - LivenessAnalysis — classic backward may-analysis (gen-kill);
///  - CheckCoverageAnalysis — forward must-analysis computing, per program
///    point, the set of values whose corruption a `soc.check` already
///    executed on every path would have detected (used by ipas-lint and
///    the dataflow-derived instruction features).
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ANALYSIS_DATAFLOW_H
#define IPAS_ANALYSIS_DATAFLOW_H

#include "ir/Function.h"

#include <cstdint>
#include <map>
#include <vector>

namespace ipas {

/// A fixed-width bit set; the dataflow fact domain.
class BitSet {
public:
  explicit BitSet(unsigned NumBits = 0)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  unsigned size() const { return NumBits; }

  void set(unsigned I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] |= uint64_t(1) << (I % 64);
  }
  void reset(unsigned I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / 64] &= ~(uint64_t(1) << (I % 64));
  }
  bool test(unsigned I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  /// Sets every bit (the top element of must-problems).
  void fill() {
    for (uint64_t &W : Words)
      W = ~uint64_t(0);
    clearPadding();
  }
  void clear() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// This |= Other. Returns true when any bit changed.
  bool unionWith(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "bit set width mismatch");
    bool Changed = false;
    for (size_t K = 0; K != Words.size(); ++K) {
      uint64_t New = Words[K] | Other.Words[K];
      Changed |= New != Words[K];
      Words[K] = New;
    }
    return Changed;
  }

  /// This &= Other. Returns true when any bit changed.
  bool intersectWith(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "bit set width mismatch");
    bool Changed = false;
    for (size_t K = 0; K != Words.size(); ++K) {
      uint64_t New = Words[K] & Other.Words[K];
      Changed |= New != Words[K];
      Words[K] = New;
    }
    return Changed;
  }

  /// This &= ~Other.
  void subtract(const BitSet &Other) {
    assert(NumBits == Other.NumBits && "bit set width mismatch");
    for (size_t K = 0; K != Words.size(); ++K)
      Words[K] &= ~Other.Words[K];
  }

  unsigned count() const {
    unsigned N = 0;
    for (uint64_t W : Words)
      N += static_cast<unsigned>(__builtin_popcountll(W));
    return N;
  }

  bool operator==(const BitSet &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }
  bool operator!=(const BitSet &Other) const { return !(*this == Other); }

private:
  /// Keeps bits past NumBits zero so count() and == stay exact after
  /// fill().
  void clearPadding() {
    if (NumBits % 64 && !Words.empty())
      Words.back() &= (uint64_t(1) << (NumBits % 64)) - 1;
  }

  unsigned NumBits;
  std::vector<uint64_t> Words;
};

/// Dense index space for dataflow facts: one index per Value of interest in
/// a function — arguments first, then every instruction in layout order
/// (including non-value-producing ones, so indices are stable and cheap).
class ValueNumbering {
public:
  explicit ValueNumbering(const Function &F);

  unsigned size() const { return static_cast<unsigned>(Values.size()); }

  /// True when \p V is an argument or instruction of the function.
  bool has(const Value *V) const { return Index.count(V) != 0; }

  unsigned indexOf(const Value *V) const {
    auto It = Index.find(V);
    assert(It != Index.end() && "value is not numbered in this function");
    return It->second;
  }

  const Value *valueAt(unsigned I) const {
    assert(I < Values.size() && "value index out of range");
    return Values[I];
  }

  BitSet makeSet() const { return BitSet(size()); }

private:
  std::map<const Value *, unsigned> Index;
  std::vector<const Value *> Values;
};

enum class DataflowDirection : uint8_t { Forward, Backward };
enum class MeetKind : uint8_t { Union, Intersection };

/// A dataflow problem at basic-block granularity. The framework makes no
/// assumption about what the bits mean; instances document their domain.
class DataflowProblem {
public:
  virtual ~DataflowProblem() = default;

  virtual DataflowDirection direction() const = 0;
  virtual MeetKind meet() const = 0;

  /// State at the CFG boundary: the entry block's in-state for forward
  /// problems, every exit block's out-state for backward ones.
  virtual BitSet boundaryState() const = 0;

  /// Initial state of interior blocks: empty for may-problems, the
  /// universe for must-problems (so unvisited paths do not constrain the
  /// meet).
  virtual BitSet initialState() const = 0;

  /// Applies the block's transfer function to \p State, in execution order
  /// for forward problems and reverse order for backward ones.
  virtual void transfer(const BasicBlock *BB, BitSet &State) const = 0;
};

/// Problems expressible with per-block gen/kill sets get the standard
/// State = Gen ∪ (State − Kill) transfer for free.
class GenKillProblem : public DataflowProblem {
public:
  void transfer(const BasicBlock *BB, BitSet &State) const final {
    State.subtract(killSet(BB));
    State.unionWith(genSet(BB));
  }

  virtual const BitSet &genSet(const BasicBlock *BB) const = 0;
  virtual const BitSet &killSet(const BasicBlock *BB) const = 0;
};

/// Iterative worklist solver. Construct with a function and a problem,
/// call solve(), then query in()/out() (always in *program* order: in() is
/// the state at the block's entry, out() at its exit, for both
/// directions).
class DataflowSolver {
public:
  DataflowSolver(const Function &F, const DataflowProblem &P);

  void solve();

  const BitSet &in(const BasicBlock *BB) const {
    return States.at(BB).In;
  }
  const BitSet &out(const BasicBlock *BB) const {
    return States.at(BB).Out;
  }

  /// Number of block-transfer applications solve() performed (convergence
  /// statistic surfaced by tests and benchmarks).
  unsigned transfersApplied() const { return Transfers; }

private:
  struct BlockState {
    BitSet In;
    BitSet Out;
  };

  const Function &F;
  const DataflowProblem &P;
  std::map<const BasicBlock *, BlockState> States;
  unsigned Transfers = 0;
};

//===----------------------------------------------------------------------===//
// Instance: liveness
//===----------------------------------------------------------------------===//

/// Classic backward may-analysis over values: a value is live at a point
/// when some path from the point to an exit uses it before redefining it
/// (SSA: never redefined, so kill = def). Phi operands are conservatively
/// treated as uses at the head of the phi's block rather than at the tail
/// of the incoming edge; this over-approximates liveness on the other
/// incoming edges, which is safe for every consumer in this repository.
class LivenessAnalysis {
public:
  explicit LivenessAnalysis(const Function &F);

  const BitSet &liveIn(const BasicBlock *BB) const { return Solver.in(BB); }
  const BitSet &liveOut(const BasicBlock *BB) const {
    return Solver.out(BB);
  }

  bool isLiveIn(const Value *V, const BasicBlock *BB) const {
    return Numbering.has(V) && liveIn(BB).test(Numbering.indexOf(V));
  }
  bool isLiveOut(const Value *V, const BasicBlock *BB) const {
    return Numbering.has(V) && liveOut(BB).test(Numbering.indexOf(V));
  }

  const ValueNumbering &numbering() const { return Numbering; }

private:
  class Problem : public GenKillProblem {
  public:
    Problem(const Function &F, const ValueNumbering &N);
    DataflowDirection direction() const override {
      return DataflowDirection::Backward;
    }
    MeetKind meet() const override { return MeetKind::Union; }
    BitSet boundaryState() const override { return BitSet(Width); }
    BitSet initialState() const override { return BitSet(Width); }
    const BitSet &genSet(const BasicBlock *BB) const override {
      return Gen.at(BB);
    }
    const BitSet &killSet(const BasicBlock *BB) const override {
      return Kill.at(BB);
    }

  private:
    unsigned Width;
    std::map<const BasicBlock *, BitSet> Gen;  ///< Upward-exposed uses.
    std::map<const BasicBlock *, BitSet> Kill; ///< Definitions.
  };

  ValueNumbering Numbering;
  Problem Prob;
  DataflowSolver Solver;
};

//===----------------------------------------------------------------------===//
// Instance: reaching soc.check coverage
//===----------------------------------------------------------------------===//

/// Forward must-analysis: a value is *check-covered* at a program point
/// when on every path reaching the point a `soc.check` has executed that
/// would detect a corruption of the value. A check covers its original
/// operand directly, and — through the duplication-provenance metadata —
/// every original whose shadow transitively feeds the check's shadow
/// operand: a fault in any instruction of a duplication path skews the
/// path-end comparison, because the shadow chain recomputes the whole
/// path (paper §4.4).
class CheckCoverageAnalysis {
public:
  explicit CheckCoverageAnalysis(const Function &F);

  const BitSet &coveredIn(const BasicBlock *BB) const {
    return Solver.in(BB);
  }
  const BitSet &coveredOut(const BasicBlock *BB) const {
    return Solver.out(BB);
  }

  /// True when \p V is covered at the end of block \p BB on every path.
  bool isCoveredAtBlockEnd(const Value *V, const BasicBlock *BB) const {
    return Numbering.has(V) && coveredOut(BB).test(Numbering.indexOf(V));
  }

  const ValueNumbering &numbering() const { return Numbering; }

private:
  class Problem : public GenKillProblem {
  public:
    Problem(const Function &F, const ValueNumbering &N);
    DataflowDirection direction() const override {
      return DataflowDirection::Forward;
    }
    MeetKind meet() const override { return MeetKind::Intersection; }
    BitSet boundaryState() const override { return BitSet(Width); }
    BitSet initialState() const override {
      BitSet S(Width);
      S.fill();
      return S;
    }
    const BitSet &genSet(const BasicBlock *BB) const override {
      return Gen.at(BB);
    }
    const BitSet &killSet(const BasicBlock *BB) const override {
      return Kill.at(BB);
    }

  private:
    unsigned Width;
    std::map<const BasicBlock *, BitSet> Gen;  ///< Values checked here.
    BitSet EmptyKill;                          ///< SSA: nothing uncovers.
    std::map<const BasicBlock *, BitSet> Kill; ///< All empty.
  };

  ValueNumbering Numbering;
  Problem Prob;
  DataflowSolver Solver;
};

} // namespace ipas

#endif // IPAS_ANALYSIS_DATAFLOW_H
