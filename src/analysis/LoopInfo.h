//===- analysis/LoopInfo.h - Natural loop detection ------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loops from back edges (edge T->H where H dominates T). Used for
/// feature 17 of Table 1 ("basic block is within a loop") and loop depth.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ANALYSIS_LOOPINFO_H
#define IPAS_ANALYSIS_LOOPINFO_H

#include "analysis/Dominators.h"

#include <map>
#include <set>
#include <vector>

namespace ipas {

/// One natural loop: header plus body blocks.
struct Loop {
  BasicBlock *Header = nullptr;
  std::set<BasicBlock *> Blocks;
};

class LoopInfo {
public:
  LoopInfo(const Function &F, const DominatorTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }

  /// True when \p BB belongs to at least one natural loop.
  bool isInLoop(const BasicBlock *BB) const;

  /// Number of distinct loops containing \p BB (0 = not in a loop).
  unsigned loopDepth(const BasicBlock *BB) const;

private:
  std::vector<Loop> Loops;
  std::map<const BasicBlock *, unsigned> Depth;
};

} // namespace ipas

#endif // IPAS_ANALYSIS_LOOPINFO_H
