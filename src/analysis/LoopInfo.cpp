//===- analysis/LoopInfo.cpp --------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"

using namespace ipas;

LoopInfo::LoopInfo(const Function &F, const DominatorTree &DT) {
  // A back edge is T -> H with H dominating T; the loop body is everything
  // that reaches T without passing through H.
  for (BasicBlock *T : F) {
    if (!DT.isReachable(T))
      continue;
    for (BasicBlock *H : T->successors()) {
      if (!DT.dominates(H, T))
        continue;
      Loop L;
      L.Header = H;
      L.Blocks.insert(H);
      std::vector<BasicBlock *> Work;
      if (L.Blocks.insert(T).second)
        Work.push_back(T);
      while (!Work.empty()) {
        BasicBlock *BB = Work.back();
        Work.pop_back();
        for (BasicBlock *P : F.predecessors(BB))
          if (DT.isReachable(P) && L.Blocks.insert(P).second)
            Work.push_back(P);
      }
      Loops.push_back(std::move(L));
    }
  }
  for (const Loop &L : Loops)
    for (const BasicBlock *BB : L.Blocks)
      ++Depth[BB];
}

bool LoopInfo::isInLoop(const BasicBlock *BB) const {
  return Depth.count(BB) != 0;
}

unsigned LoopInfo::loopDepth(const BasicBlock *BB) const {
  auto It = Depth.find(BB);
  return It == Depth.end() ? 0 : It->second;
}
