//===- analysis/Dominators.cpp ------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"

#include <algorithm>

using namespace ipas;

const std::vector<BasicBlock *> DominatorTree::Empty;

DominatorTree::DominatorTree(const Function &F) : F(F) {
  assert(!F.empty() && "dominators of an empty function");

  // Depth-first post-order from the entry block.
  std::vector<BasicBlock *> PostOrder;
  std::map<const BasicBlock *, bool> Visited;
  // Iterative DFS carrying an explicit successor cursor.
  struct Frame {
    BasicBlock *BB;
    std::vector<BasicBlock *> Succs;
    size_t Next = 0;
  };
  std::vector<Frame> Stack;
  Visited[F.entry()] = true;
  Stack.push_back({F.entry(), F.entry()->successors()});
  while (!Stack.empty()) {
    Frame &Top = Stack.back();
    if (Top.Next < Top.Succs.size()) {
      BasicBlock *S = Top.Succs[Top.Next++];
      if (!Visited[S]) {
        Visited[S] = true;
        Stack.push_back({S, S->successors()});
      }
      continue;
    }
    PostOrder.push_back(Top.BB);
    Stack.pop_back();
  }

  RPO.assign(PostOrder.rbegin(), PostOrder.rend());
  for (BasicBlock *BB : F)
    Nodes[BB]; // default-construct (unreachable unless set below)
  for (size_t I = 0; I != RPO.size(); ++I)
    Nodes[RPO[I]].RpoIndex = static_cast<int>(I);

  // Cooper–Harvey–Kennedy: iterate idom updates in RPO until fixpoint.
  auto Intersect = [&](BasicBlock *A, BasicBlock *B) {
    while (A != B) {
      while (Nodes[A].RpoIndex > Nodes[B].RpoIndex)
        A = Nodes[A].Idom;
      while (Nodes[B].RpoIndex > Nodes[A].RpoIndex)
        B = Nodes[B].Idom;
    }
    return A;
  };

  Nodes[F.entry()].Idom = F.entry();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BasicBlock *BB : RPO) {
      if (BB == F.entry())
        continue;
      BasicBlock *NewIdom = nullptr;
      for (BasicBlock *P : F.predecessors(BB)) {
        if (Nodes[P].RpoIndex < 0 || !Nodes[P].Idom)
          continue; // unreachable or not yet processed
        NewIdom = NewIdom ? Intersect(NewIdom, P) : P;
      }
      if (NewIdom && Nodes[BB].Idom != NewIdom) {
        Nodes[BB].Idom = NewIdom;
        Changed = true;
      }
    }
  }
  // Normalize: the entry's idom is null externally.
  Nodes[F.entry()].Idom = nullptr;

  // Dominator-tree children.
  for (BasicBlock *BB : RPO)
    if (BasicBlock *ID = Nodes[BB].Idom)
      Nodes[ID].Children.push_back(BB);

  // Dominance frontiers (Cytron et al.): for each join point, walk up from
  // each predecessor to the idom of the join.
  for (BasicBlock *BB : RPO) {
    std::vector<BasicBlock *> Preds;
    for (BasicBlock *P : F.predecessors(BB))
      if (Nodes[P].RpoIndex >= 0)
        Preds.push_back(P);
    if (Preds.size() < 2)
      continue;
    for (BasicBlock *P : Preds) {
      BasicBlock *Runner = P;
      while (Runner != Nodes[BB].Idom) {
        std::vector<BasicBlock *> &DF = Nodes[Runner].Frontier;
        if (std::find(DF.begin(), DF.end(), BB) == DF.end())
          DF.push_back(BB);
        Runner = Nodes[Runner].Idom;
      }
    }
  }
}

const DominatorTree::Node &DominatorTree::node(const BasicBlock *BB) const {
  auto It = Nodes.find(BB);
  assert(It != Nodes.end() && "block not in this function");
  return It->second;
}

BasicBlock *DominatorTree::idom(const BasicBlock *BB) const {
  return node(BB).Idom;
}

bool DominatorTree::isReachable(const BasicBlock *BB) const {
  return node(BB).RpoIndex >= 0;
}

bool DominatorTree::dominates(const BasicBlock *A,
                              const BasicBlock *B) const {
  if (A == B)
    return true;
  if (!isReachable(A) || !isReachable(B))
    return false;
  // Walk B's idom chain; A dominates B iff A appears on it.
  const BasicBlock *Runner = node(B).Idom;
  while (Runner) {
    if (Runner == A)
      return true;
    Runner = node(Runner).Idom;
  }
  return false;
}

bool DominatorTree::dominatesUse(const Instruction *Def,
                                 const Instruction *User,
                                 unsigned OperandIndex) const {
  const BasicBlock *DefBB = Def->parent();
  if (const auto *Phi = dyn_cast<PhiInst>(User)) {
    const BasicBlock *Incoming = Phi->incomingBlock(OperandIndex);
    return DefBB == Incoming || dominates(DefBB, Incoming);
  }
  const BasicBlock *UseBB = User->parent();
  if (DefBB == UseBB)
    return DefBB->indexOf(Def) < UseBB->indexOf(User);
  return dominates(DefBB, UseBB);
}

const std::vector<BasicBlock *> &
DominatorTree::children(const BasicBlock *BB) const {
  return node(BB).Children;
}

const std::vector<BasicBlock *> &
DominatorTree::frontier(const BasicBlock *BB) const {
  return node(BB).Frontier;
}
