//===- analysis/ProtectionLint.h - ipas-lint invariant checker ------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `ipas-lint`: statically verifies that a module which has been through
/// the duplication pass (transform/Duplication.h) still satisfies the
/// protection invariants. The pass stamps provenance on everything it
/// touches (Instruction::dupRole/dupLink); later transforms, hand edits,
/// or pass bugs can silently break protection without breaking program
/// semantics — exactly the failure mode a verifier cannot see and a lint
/// must.
///
/// Rules:
///
///  - R1 uncovered-original: every duplication path must terminate in a
///    `soc.check` — each Original must be check-covered at the end of its
///    defining block (CheckCoverageAnalysis).
///  - R2 shadow-escapes: a Shadow value must never flow into an original
///    computation; its only legal consumers are other Shadows and the
///    shadow operand of a check.
///  - R3 unduplicated: with LintOptions::ExpectFullDuplication, every
///    duplicable instruction must be an Original with a live shadow —
///    a selected-but-unduplicated instruction is silent unprotection.
///  - R4 bad-check-pairing: a check must compare an original against its
///    *own* shadow: operand 1 is a Shadow whose dupLink is operand 0, and
///    operand 0 is not itself a Shadow.
///  - R5 wrong-shadow-operand: each shadow operand must mirror its
///    original's operand — the operand's shadow when the operand was
///    duplicated in the same block, the operand itself otherwise. A
///    crossed edge makes the shadow recompute from original data, masking
///    faults upstream of the crossing.
///  - R6 unchecked-call-argument (opt-in, LintOptions::CheckCallBoundary):
///    a duplicated value passed to a non-intrinsic call must be checked
///    *before* the call — by a soc.check earlier in the call's block, or
///    anywhere in the value's defining block when the call sits in a
///    later block. Under path-end placement a value whose chain continues
///    past the call site otherwise crosses the boundary unchecked, and
///    the callee consumes the possibly-corrupt original before any check
///    fires. DuplicationOptions::CheckCallBoundary closes the gap.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ANALYSIS_PROTECTIONLINT_H
#define IPAS_ANALYSIS_PROTECTIONLINT_H

#include "ir/Module.h"

#include <string>
#include <vector>

namespace ipas {

enum class LintRule : uint8_t {
  UncoveredOriginal,     ///< R1
  ShadowEscapes,         ///< R2
  Unduplicated,          ///< R3
  BadCheckPairing,       ///< R4
  WrongShadowOperand,    ///< R5
  UncheckedCallArgument, ///< R6
};

/// Short identifier ("R1".."R6") for a rule.
const char *lintRuleName(LintRule R);

/// One rule violation, located down to the instruction.
struct LintViolation {
  LintRule Rule;
  std::string FunctionName;
  std::string BlockName;
  unsigned InstructionId; ///< Module-wide id of the offending instruction.
  Opcode Op;              ///< Opcode of the offending instruction.
  std::string Message;

  /// "R2 in foo/entry at #7 (mul): ..." — the ipas-cc report line.
  std::string toString() const;
};

struct LintOptions {
  /// The module was protected with duplicateAllInstructions(): every
  /// duplicable instruction must carry an Original stamp (rule R3).
  /// Leave false for predicate-selected protection, where unstamped
  /// duplicable instructions are legitimate.
  bool ExpectFullDuplication = false;
  /// Enforce rule R6: duplicated values crossing a call boundary must be
  /// checked before the call. Opt-in because the paper's path-end
  /// placement legitimately leaves mid-path call arguments unchecked;
  /// protect with DuplicationOptions::CheckCallBoundary to satisfy it.
  bool CheckCallBoundary = false;
};

std::vector<LintViolation> lintProtectedFunction(const Function &F,
                                                 const LintOptions &Opts = {});
std::vector<LintViolation> lintProtectedModule(const Module &M,
                                               const LintOptions &Opts = {});

} // namespace ipas

#endif // IPAS_ANALYSIS_PROTECTIONLINT_H
