//===- analysis/CallGraph.cpp ---------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"

#include <algorithm>
#include <cassert>

using namespace ipas;

namespace {

/// Iterative Tarjan over the callee adjacency. Recursing on the host
/// stack would make deeply nested call chains in generated programs a
/// stack-overflow hazard, so the DFS state is explicit.
struct TarjanState {
  const std::map<const Function *, std::vector<const Function *>> &Adj;
  std::map<const Function *, unsigned> Index;
  std::map<const Function *, unsigned> LowLink;
  std::map<const Function *, bool> OnStack;
  std::vector<const Function *> Stack;
  unsigned NextIndex = 0;
  std::vector<std::vector<const Function *>> Sccs;

  explicit TarjanState(
      const std::map<const Function *, std::vector<const Function *>> &Adj)
      : Adj(Adj) {}

  void run(const Function *Root) {
    if (Index.count(Root))
      return;
    struct Frame {
      const Function *F;
      size_t NextChild = 0;
    };
    std::vector<Frame> Dfs;
    Dfs.push_back({Root});
    Index[Root] = LowLink[Root] = NextIndex++;
    Stack.push_back(Root);
    OnStack[Root] = true;

    while (!Dfs.empty()) {
      Frame &Top = Dfs.back();
      const std::vector<const Function *> &Children = Adj.at(Top.F);
      if (Top.NextChild < Children.size()) {
        const Function *C = Children[Top.NextChild++];
        auto It = Index.find(C);
        if (It == Index.end()) {
          Index[C] = LowLink[C] = NextIndex++;
          Stack.push_back(C);
          OnStack[C] = true;
          Dfs.push_back({C});
        } else if (OnStack[C]) {
          LowLink[Top.F] = std::min(LowLink[Top.F], It->second);
        }
        continue;
      }
      // All children visited: pop an SCC if this is its root, then fold
      // the lowlink into the parent frame.
      const Function *F = Top.F;
      Dfs.pop_back();
      if (!Dfs.empty())
        LowLink[Dfs.back().F] = std::min(LowLink[Dfs.back().F], LowLink[F]);
      if (LowLink[F] == Index[F]) {
        std::vector<const Function *> Scc;
        while (true) {
          const Function *S = Stack.back();
          Stack.pop_back();
          OnStack[S] = false;
          Scc.push_back(S);
          if (S == F)
            break;
        }
        Sccs.push_back(std::move(Scc));
      }
    }
  }
};

} // namespace

CallGraph::CallGraph(const Module &M) {
  for (const Function *F : M) {
    ModuleOrder.push_back(F);
    Callees[F]; // ensure every node exists, even leaves
    Callers[F];
  }

  for (const Function *F : M)
    for (const BasicBlock *BB : *F)
      for (const Instruction *I : *BB) {
        const auto *CI = dyn_cast<CallInst>(I);
        if (!CI || CI->isIntrinsicCall())
          continue;
        const Function *G = CI->callee();
        assert(G && "direct call without a callee");
        std::vector<const Function *> &Out = Callees[F];
        if (std::find(Out.begin(), Out.end(), G) == Out.end())
          Out.push_back(G);
        std::vector<const Function *> &In = Callers[G];
        if (std::find(In.begin(), In.end(), F) == In.end())
          In.push_back(F);
      }

  // Tarjan emits each SCC only after all SCCs reachable from it, i.e. in
  // bottom-up (callee-first) order over the condensation.
  TarjanState T(Callees);
  for (const Function *F : ModuleOrder)
    T.run(F);
  Sccs = std::move(T.Sccs);
  for (unsigned I = 0, E = Sccs.size(); I != E; ++I)
    for (const Function *F : Sccs[I])
      SccOf[F] = I;
}

const std::vector<const Function *> &
CallGraph::callees(const Function *F) const {
  auto It = Callees.find(F);
  return It != Callees.end() ? It->second : Empty;
}

const std::vector<const Function *> &
CallGraph::callers(const Function *F) const {
  auto It = Callers.find(F);
  return It != Callers.end() ? It->second : Empty;
}

unsigned CallGraph::sccIndex(const Function *F) const {
  auto It = SccOf.find(F);
  assert(It != SccOf.end() && "function not in this call graph");
  return It->second;
}

bool CallGraph::isRecursive(const Function *F) const {
  const std::vector<const Function *> &Scc = Sccs[sccIndex(F)];
  if (Scc.size() > 1)
    return true;
  const std::vector<const Function *> &Out = callees(F);
  return std::find(Out.begin(), Out.end(), F) != Out.end();
}

std::vector<const Function *>
CallGraph::reachableFrom(const Function *F) const {
  std::map<const Function *, bool> Seen;
  std::vector<const Function *> Stack{F};
  Seen[F] = true;
  while (!Stack.empty()) {
    const Function *Cur = Stack.back();
    Stack.pop_back();
    for (const Function *G : callees(Cur))
      if (!Seen[G]) {
        Seen[G] = true;
        Stack.push_back(G);
      }
  }
  std::vector<const Function *> Out;
  for (const Function *G : ModuleOrder)
    if (Seen.count(G) && Seen[G])
      Out.push_back(G);
  return Out;
}
