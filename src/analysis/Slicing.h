//===- analysis/Slicing.h - Forward program slicing ------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward program slices in the spirit of Weiser's algorithm: starting
/// from an instruction, the slice is the set of instructions its value can
/// influence. IPAS uses the forward slice to characterize how far an error
/// in an instruction can propagate (Table 1, features 25-31).
///
/// Data flow is followed through def-use chains and, conservatively,
/// through memory: when a store's value or address is in the slice, loads
/// that may read from the same base object (shared pointer root) join the
/// slice. The base-object approximation is documented in DESIGN.md as a
/// substitution for full alias analysis.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ANALYSIS_SLICING_H
#define IPAS_ANALYSIS_SLICING_H

#include "ir/Function.h"

#include <set>

namespace ipas {

class CallGraph;

struct SliceOptions {
  /// Follow stores to loads via pointer-root matching. Disabling this
  /// yields pure def-use slices (the ablation in DESIGN.md).
  bool ThroughMemory = true;
  /// Follow direct call edges: a tainted actual argument taints the
  /// callee's formal parameter (its users join the slice), and taint
  /// reaching a `ret` taints the call result at every call site of the
  /// returning function (found through CG->callers()). Memory matching
  /// stays per-function — pointer roots are not aliased across the
  /// argument boundary, the same approximation DESIGN.md documents for
  /// the intraprocedural slice. Requires CG; on a call-free program the
  /// slice is identical with the flag on or off.
  bool FollowCalls = false;
  const CallGraph *CG = nullptr; ///< Required when FollowCalls is set.
};

/// Walks GEP chains back to the root object (alloca, argument, or call
/// result). Returns null when the root is a constant.
const Value *pointerRoot(const Value *Ptr);

/// Forward slice of \p Start within its function — or across the whole
/// module when SliceOptions::FollowCalls is set. The slice excludes
/// \p Start itself.
std::set<const Instruction *> forwardSlice(const Instruction *Start,
                                           const SliceOptions &Opts = {});

} // namespace ipas

#endif // IPAS_ANALYSIS_SLICING_H
