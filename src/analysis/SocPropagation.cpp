//===- analysis/SocPropagation.cpp --------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/SocPropagation.h"

#include "analysis/FunctionSummary.h"
#include "analysis/Slicing.h"

#include <deque>
#include <set>

using namespace ipas;

const char *ipas::socSinkKindName(SocSinkKind K) {
  switch (K) {
  case SocSinkNone:
    return "none";
  case SocSinkStore:
    return "store";
  case SocSinkCallArgument:
    return "call-argument";
  case SocSinkReturn:
    return "return";
  case SocSinkControlFlow:
    return "control-flow";
  case SocSinkCheck:
    return "check";
  case SocSinkTrapCapable:
    return "trap-capable";
  }
  return "<bad sink kind>";
}

namespace {

/// Mutable per-value state during the fixpoint.
struct NodeState {
  unsigned Mask = SocSinkNone;
  BitSet Sinks;          ///< Distinct sink instructions, by value number.
  unsigned Dist = SocInstructionInfo::NoSink;
};

/// One value-flow edge target plus the sinks hit directly at the user.
struct DirectSink {
  unsigned Kind;
  const Instruction *At;
};

} // namespace

void SocPropagation::analyzeFunction(const Function &F) {
  ValueNumbering N(F);

  // Memory summary: pointer root -> loads that may read it.
  std::map<const Value *, std::vector<const Instruction *>> LoadsOfRoot;
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      if (const auto *Load = dyn_cast<LoadInst>(I))
        if (const Value *Root = pointerRoot(Load->pointer()))
          LoadsOfRoot[Root].push_back(Load);

  // Value-flow graph: for every value, the values its corruption flows
  // into (Succs) and the sinks it hits directly at its users (Direct).
  std::map<const Value *, std::vector<const Value *>> Succs;
  std::map<const Value *, std::vector<DirectSink>> Direct;
  std::map<const Value *, std::vector<const Value *>> Preds;

  auto AddEdge = [&](const Value *From, const Value *To) {
    Succs[From].push_back(To);
    Preds[To].push_back(From);
  };

  auto ScanValue = [&](const Value *V) {
    for (const Instruction *U : V->users()) {
      switch (U->opcode()) {
      case Opcode::Store: {
        const auto *St = cast<StoreInst>(U);
        Direct[V].push_back({SocSinkStore, U});
        if (V == St->pointer())
          Direct[V].push_back({SocSinkTrapCapable, U});
        // Memory edge: the corrupted value (or a value stored through a
        // corrupted address) may be observed by any load of the same
        // base object.
        if (const Value *Root = pointerRoot(St->pointer())) {
          auto It = LoadsOfRoot.find(Root);
          if (It != LoadsOfRoot.end())
            for (const Instruction *Load : It->second)
              AddEdge(V, Load);
        }
        break;
      }
      case Opcode::Call:
        Direct[V].push_back({SocSinkCallArgument, U});
        if (U->producesValue())
          AddEdge(V, U); // corrupted argument -> corrupted result
        break;
      case Opcode::Ret:
        Direct[V].push_back({SocSinkReturn, U});
        break;
      case Opcode::CondBr:
        Direct[V].push_back({SocSinkControlFlow, U});
        break;
      case Opcode::Check:
        Direct[V].push_back({SocSinkCheck, U});
        break;
      case Opcode::Load:
        // V is the pointer: a corrupted address can fault, and the loaded
        // value is whatever the wild address holds.
        Direct[V].push_back({SocSinkTrapCapable, U});
        AddEdge(V, U);
        break;
      case Opcode::SDiv:
      case Opcode::SRem:
        if (U->numOperands() == 2 && U->operand(1) == V)
          Direct[V].push_back({SocSinkTrapCapable, U});
        AddEdge(V, U);
        break;
      default:
        if (U->producesValue())
          AddEdge(V, U);
        break;
      }
    }
  };

  for (unsigned I = 0, E = F.numArgs(); I != E; ++I)
    ScanValue(F.arg(I));
  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB)
      if (I->producesValue())
        ScanValue(I);

  // Backward fixpoint: a node's state is the union of its direct sinks and
  // its successors' states (distance +1 per hop). All updates are monotone
  // over a finite lattice, so the worklist terminates.
  std::map<const Value *, NodeState> State;
  auto StateOf = [&](const Value *V) -> NodeState & {
    auto It = State.find(V);
    if (It == State.end())
      It = State.emplace(V, NodeState{SocSinkNone, N.makeSet(),
                                      SocInstructionInfo::NoSink})
               .first;
    return It->second;
  };

  std::deque<const Value *> Worklist;
  std::set<const Value *> OnList;
  auto Enqueue = [&](const Value *V) {
    if (OnList.insert(V).second)
      Worklist.push_back(V);
  };

  for (unsigned I = 0, E = N.size(); I != E; ++I)
    Enqueue(N.valueAt(I));

  while (!Worklist.empty()) {
    const Value *V = Worklist.front();
    Worklist.pop_front();
    OnList.erase(V);

    NodeState New{SocSinkNone, N.makeSet(), SocInstructionInfo::NoSink};
    auto DirIt = Direct.find(V);
    if (DirIt != Direct.end())
      for (const DirectSink &S : DirIt->second) {
        New.Mask |= S.Kind;
        New.Sinks.set(N.indexOf(S.At));
        New.Dist = std::min(New.Dist, 1u);
      }
    auto SuccIt = Succs.find(V);
    if (SuccIt != Succs.end())
      for (const Value *S : SuccIt->second) {
        const NodeState &SS = StateOf(S);
        New.Mask |= SS.Mask;
        New.Sinks.unionWith(SS.Sinks);
        if (SS.Dist != SocInstructionInfo::NoSink)
          New.Dist = std::min(New.Dist, SS.Dist + 1);
      }

    NodeState &Cur = StateOf(V);
    if (New.Mask == Cur.Mask && New.Dist == Cur.Dist &&
        New.Sinks == Cur.Sinks)
      continue;
    Cur = std::move(New);
    auto PredIt = Preds.find(V);
    if (PredIt != Preds.end())
      for (const Value *P : PredIt->second)
        Enqueue(P);
  }

  for (const BasicBlock *BB : F)
    for (const Instruction *I : *BB) {
      if (!I->producesValue())
        continue;
      const NodeState &S = StateOf(I);
      SocInstructionInfo &R = Info[I];
      R.SinkMask = S.Mask;
      R.SinkCount = S.Sinks.count();
      R.MinSinkDistance = S.Dist;
    }
}

void SocPropagation::finalize(const Module &M) {
  BenignById.assign(M.numInstructions(), false);
  for (const auto &[I, R] : Info) {
    if (!R.isBenign())
      continue;
    assert(I->id() < BenignById.size() &&
           "SocPropagation requires Module::renumber() before analysis");
    BenignById[I->id()] = true;
    ++NumBenign;
  }
}

SocPropagation::SocPropagation(const Module &M) {
  for (const Function *F : M)
    analyzeFunction(*F);
  finalize(M);
}

SocPropagation::SocPropagation(const Module &M,
                               const ModuleSummaries &Summaries) {
  for (const Function *F : M) {
    FunctionSocAnalysis R =
        analyzeFunctionFlow(*F, &Summaries, /*RetIsSink=*/true);
    for (auto &[I, Inf] : R.Info)
      Info[I] = Inf;
  }
  finalize(M);
}

const SocInstructionInfo &SocPropagation::info(const Instruction *I) const {
  auto It = Info.find(I);
  return It != Info.end() ? It->second : Default;
}
