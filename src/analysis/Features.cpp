//===- analysis/Features.cpp --------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Features.h"

#include "analysis/Dataflow.h"
#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/SocPropagation.h"

#include <limits>
#include <map>

using namespace ipas;

const char *ipas::featureName(unsigned Index) {
  static const char *Names[NumInstructionFeatures] = {
      "is_binary_op",
      "is_add_or_sub",
      "is_mul_or_div",
      "is_remainder",
      "is_logical_op",
      "is_call",
      "is_comparison",
      "is_atomic_rw",
      "is_get_pointer",
      "is_stack_allocation",
      "is_cast",
      "result_bytes",
      "remaining_insts_in_bb",
      "bb_size",
      "num_successor_bbs",
      "sum_successor_bb_sizes",
      "bb_in_loop",
      "bb_has_phi",
      "bb_terminator_is_branch",
      "remaining_insts_to_return",
      "insts_in_function",
      "bbs_in_function",
      "future_function_calls",
      "function_returns_value",
      "slice_size",
      "slice_loads",
      "slice_stores",
      "slice_calls",
      "slice_binary_ops",
      "slice_stack_allocations",
      "slice_get_pointers",
  };
  assert(Index < NumInstructionFeatures && "feature index out of range");
  return Names[Index];
}

const char *ipas::extendedFeatureName(unsigned Index) {
  if (Index < NumInstructionFeatures)
    return featureName(Index);
  static const char *Names[NumDataflowFeatures] = {
      "soc_reaches_store",
      "soc_reaches_call",
      "soc_reaches_return",
      "soc_reaches_control",
      "soc_reaches_trap",
      "soc_sink_count",
      "soc_min_sink_distance",
      "live_values_at_entry",
  };
  assert(Index < NumInstructionFeatures + NumDataflowFeatures &&
         "extended feature index out of range");
  return Names[Index - NumInstructionFeatures];
}

namespace {

/// Per-function context shared by all instructions of the function.
struct FunctionContext {
  const Function *F;
  DominatorTree DT;
  LoopInfo LI;
  /// Minimum instruction count from the *start* of each block to a return
  /// (inclusive of the block's own instructions along the path).
  std::map<const BasicBlock *, double> MinInstsToReturn;
  /// Calls in each block and total calls reachable from each block's
  /// successors (each block counted once).
  std::map<const BasicBlock *, double> CallsFromSuccessors;
  std::map<const BasicBlock *, double> CallsInBlock;
  size_t NumInsts;
  size_t NumBlocks;

  explicit FunctionContext(const Function &Fn)
      : F(&Fn), DT(Fn), LI(Fn, DT), NumInsts(Fn.numInstructions()),
        NumBlocks(Fn.numBlocks()) {
    computeReturnDistances();
    computeFutureCalls();
  }

  void computeReturnDistances() {
    // Bellman-Ford style relaxation over the reversed CFG:
    // dist(B) = size(B) if B ends in ret, else size(B) + min over succs.
    const double Inf = std::numeric_limits<double>::infinity();
    for (BasicBlock *BB : *F)
      MinInstsToReturn[BB] = Inf;
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (BasicBlock *BB : *F) {
        double Best = Inf;
        Instruction *Term = BB->terminator();
        if (Term && Term->opcode() == Opcode::Ret) {
          Best = 0.0;
        } else {
          for (BasicBlock *S : BB->successors())
            Best = std::min(Best, MinInstsToReturn[S]);
        }
        if (Best != Inf) {
          double NewDist = static_cast<double>(BB->size()) + Best;
          if (NewDist < MinInstsToReturn[BB]) {
            MinInstsToReturn[BB] = NewDist;
            Changed = true;
          }
        }
      }
    }
    // Blocks that cannot reach a return (infinite loops): use the function
    // size as a large sentinel.
    for (BasicBlock *BB : *F)
      if (MinInstsToReturn[BB] == Inf)
        MinInstsToReturn[BB] = static_cast<double>(NumInsts);
  }

  void computeFutureCalls() {
    for (BasicBlock *BB : *F) {
      double Calls = 0;
      for (Instruction *I : *BB)
        if (I->opcode() == Opcode::Call)
          ++Calls;
      CallsInBlock[BB] = Calls;
    }
    // For each block, sum calls over all blocks reachable from its
    // successors (set-based closure; each block counted once).
    for (BasicBlock *BB : *F) {
      std::set<const BasicBlock *> Seen;
      std::vector<BasicBlock *> Work = BB->successors();
      for (BasicBlock *S : Work)
        Seen.insert(S);
      double Total = 0;
      while (!Work.empty()) {
        BasicBlock *Cur = Work.back();
        Work.pop_back();
        Total += CallsInBlock[Cur];
        for (BasicBlock *S : Cur->successors())
          if (Seen.insert(S).second)
            Work.push_back(S);
      }
      CallsFromSuccessors[BB] = Total;
    }
  }
};

double countInSlice(const std::set<const Instruction *> &Slice,
                    bool (*Pred)(const Instruction *)) {
  double N = 0;
  for (const Instruction *I : Slice)
    if (Pred(I))
      ++N;
  return N;
}

FeatureVector extractWithContext(const Instruction *I,
                                 const FunctionContext &Ctx,
                                 const SliceOptions &SliceOpts) {
  FeatureVector FV{};
  const BasicBlock *BB = I->parent();
  Opcode Op = I->opcode();

  // --- Instruction category (features 1-12).
  FV[0] = isBinaryOpcode(Op) ? 1 : 0;
  FV[1] = (Op == Opcode::Add || Op == Opcode::Sub || Op == Opcode::FAdd ||
           Op == Opcode::FSub)
              ? 1
              : 0;
  FV[2] = (Op == Opcode::Mul || Op == Opcode::SDiv || Op == Opcode::FMul ||
           Op == Opcode::FDiv)
              ? 1
              : 0;
  FV[3] = Op == Opcode::SRem ? 1 : 0;
  FV[4] = (Op == Opcode::And || Op == Opcode::Or || Op == Opcode::Xor ||
           Op == Opcode::Shl || Op == Opcode::AShr)
              ? 1
              : 0;
  FV[5] = Op == Opcode::Call ? 1 : 0;
  FV[6] = isCmpOpcode(Op) ? 1 : 0;
  FV[7] = 0; // The IR has no atomic read/write instructions.
  FV[8] = Op == Opcode::Gep ? 1 : 0;
  FV[9] = Op == Opcode::Alloca ? 1 : 0;
  FV[10] = isCastOpcode(Op) ? 1 : 0;
  FV[11] = I->type().bytes();

  // --- Basic-block category (features 13-19).
  size_t Index = BB->indexOf(I);
  FV[12] = static_cast<double>(BB->size() - 1 - Index);
  FV[13] = static_cast<double>(BB->size());
  std::vector<BasicBlock *> Succs = BB->successors();
  FV[14] = static_cast<double>(Succs.size());
  double SuccSizes = 0;
  for (const BasicBlock *S : Succs)
    SuccSizes += static_cast<double>(S->size());
  FV[15] = SuccSizes;
  FV[16] = Ctx.LI.isInLoop(BB) ? 1 : 0;
  bool HasPhi = !BB->empty() && BB->front()->opcode() == Opcode::Phi;
  FV[17] = HasPhi ? 1 : 0;
  const Instruction *Term = BB->terminator();
  FV[18] =
      (Term && (Term->opcode() == Opcode::Br ||
                Term->opcode() == Opcode::CondBr))
          ? 1
          : 0;

  // --- Function category (features 20-24).
  // Remaining instructions to reach a return: instructions after I in its
  // block, plus the shortest successor path.
  double Remaining = static_cast<double>(BB->size() - 1 - Index);
  if (!Term || Term->opcode() != Opcode::Ret) {
    double Best = std::numeric_limits<double>::infinity();
    for (const BasicBlock *S : Succs) {
      auto It = Ctx.MinInstsToReturn.find(S);
      if (It != Ctx.MinInstsToReturn.end())
        Best = std::min(Best, It->second);
    }
    if (Best != std::numeric_limits<double>::infinity())
      Remaining += Best;
    else
      Remaining = static_cast<double>(Ctx.NumInsts);
  }
  FV[19] = Remaining;
  FV[20] = static_cast<double>(Ctx.NumInsts);
  FV[21] = static_cast<double>(Ctx.NumBlocks);
  // Future function calls: calls after I in this block plus calls in blocks
  // reachable from here.
  double FutureCalls = 0;
  for (size_t K = Index + 1, E = BB->size(); K != E; ++K)
    if (BB->at(K)->opcode() == Opcode::Call)
      ++FutureCalls;
  FutureCalls += Ctx.CallsFromSuccessors.at(BB);
  FV[22] = FutureCalls;
  FV[23] = Ctx.F->returnType().isVoid() ? 0 : 1;

  // --- Slice category (features 25-31).
  std::set<const Instruction *> Slice = forwardSlice(I, SliceOpts);
  FV[24] = static_cast<double>(Slice.size());
  FV[25] = countInSlice(
      Slice, [](const Instruction *X) { return X->opcode() == Opcode::Load; });
  FV[26] = countInSlice(Slice, [](const Instruction *X) {
    return X->opcode() == Opcode::Store;
  });
  FV[27] = countInSlice(
      Slice, [](const Instruction *X) { return X->opcode() == Opcode::Call; });
  FV[28] = countInSlice(
      Slice, [](const Instruction *X) { return isBinaryOpcode(X->opcode()); });
  FV[29] = countInSlice(Slice, [](const Instruction *X) {
    return X->opcode() == Opcode::Alloca;
  });
  FV[30] = countInSlice(
      Slice, [](const Instruction *X) { return X->opcode() == Opcode::Gep; });
  return FV;
}

} // namespace

FeatureVector FeatureExtractor::extract(const Instruction *I) const {
  assert(I->parent() && I->parent()->parent() &&
         "feature extraction requires an attached instruction");
  FunctionContext Ctx(*I->parent()->parent());
  return extractWithContext(I, Ctx, Opts.Slice);
}

std::vector<FeatureVector>
FeatureExtractor::extractModule(const Module &M) const {
  std::vector<FeatureVector> Result(M.numInstructions());
  for (Function *F : M) {
    if (F->empty())
      continue;
    FunctionContext Ctx(*F);
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB) {
        assert(I->id() < Result.size() && "module numbering is stale");
        Result[I->id()] = extractWithContext(I, Ctx, Opts.Slice);
      }
  }
  return Result;
}

std::vector<std::vector<double>>
FeatureExtractor::extractModuleRows(const Module &M) const {
  std::vector<FeatureVector> Base = extractModule(M);
  std::vector<std::vector<double>> Rows(Base.size());
  if (!Opts.IncludeDataflowFeatures) {
    for (size_t K = 0; K != Base.size(); ++K)
      Rows[K].assign(Base[K].begin(), Base[K].end());
    return Rows;
  }

  SocPropagation Soc(M);
  for (Function *F : M) {
    if (F->empty())
      continue;
    LivenessAnalysis Liveness(*F);
    // No-sink distances use the function size as a large finite sentinel,
    // matching the convention of remaining_insts_to_return.
    double DistSentinel = static_cast<double>(F->numInstructions());
    for (BasicBlock *BB : *F) {
      double LiveAtEntry =
          static_cast<double>(Liveness.liveIn(BB).count());
      for (Instruction *I : *BB) {
        const SocInstructionInfo &Info = Soc.info(I);
        std::vector<double> &Row = Rows[I->id()];
        Row.assign(Base[I->id()].begin(), Base[I->id()].end());
        Row.push_back(Info.reaches(SocSinkStore) ? 1 : 0);
        Row.push_back(Info.reaches(SocSinkCallArgument) ? 1 : 0);
        Row.push_back(Info.reaches(SocSinkReturn) ? 1 : 0);
        Row.push_back(Info.reaches(SocSinkControlFlow) ? 1 : 0);
        Row.push_back(Info.reaches(SocSinkTrapCapable) ? 1 : 0);
        Row.push_back(static_cast<double>(Info.SinkCount));
        Row.push_back(Info.MinSinkDistance == SocInstructionInfo::NoSink
                          ? DistSentinel
                          : static_cast<double>(Info.MinSinkDistance));
        Row.push_back(LiveAtEntry);
      }
    }
  }
  return Rows;
}
