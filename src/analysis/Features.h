//===- analysis/Features.h - Table-1 instruction features ------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extracts the 31 per-instruction features of the paper's Table 1, in
/// four categories: instruction properties, basic-block properties,
/// function properties, and forward-slice properties.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ANALYSIS_FEATURES_H
#define IPAS_ANALYSIS_FEATURES_H

#include "analysis/Slicing.h"
#include "ir/Module.h"

#include <array>
#include <vector>

namespace ipas {

/// Number of features (Table 1).
inline constexpr unsigned NumInstructionFeatures = 31;

using FeatureVector = std::array<double, NumInstructionFeatures>;

/// Human-readable feature names, index-aligned with FeatureVector
/// (index 0 = Table-1 feature 1).
const char *featureName(unsigned Index);

/// Extracts all feature vectors for a function in one pass, amortizing the
/// CFG analyses. Results are index-aligned with the function's instruction
/// layout order.
class FeatureExtractor {
public:
  explicit FeatureExtractor(const SliceOptions &SliceOpts = {})
      : SliceOpts(SliceOpts) {}

  /// Features of a single instruction.
  FeatureVector extract(const Instruction *I) const;

  /// Features of every instruction in \p M, indexed by instruction id (the
  /// module must be renumber()-ed).
  std::vector<FeatureVector> extractModule(const Module &M) const;

private:
  SliceOptions SliceOpts;
};

} // namespace ipas

#endif // IPAS_ANALYSIS_FEATURES_H
