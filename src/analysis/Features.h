//===- analysis/Features.h - Table-1 instruction features ------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Extracts the 31 per-instruction features of the paper's Table 1, in
/// four categories: instruction properties, basic-block properties,
/// function properties, and forward-slice properties.
///
/// An optional fifth category (off by default, so the paper-faithful
/// 31-column layout is untouched) appends 8 dataflow-derived columns from
/// analysis/SocPropagation and analysis/Dataflow: which sink kinds a
/// corruption of the instruction can reach, how many distinct sinks, the
/// value-flow distance to the nearest one, and the live-value pressure at
/// the instruction's block entry.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_ANALYSIS_FEATURES_H
#define IPAS_ANALYSIS_FEATURES_H

#include "analysis/Slicing.h"
#include "ir/Module.h"

#include <array>
#include <vector>

namespace ipas {

/// Number of features (Table 1).
inline constexpr unsigned NumInstructionFeatures = 31;

/// Number of optional dataflow-derived feature columns.
inline constexpr unsigned NumDataflowFeatures = 8;

using FeatureVector = std::array<double, NumInstructionFeatures>;

/// Human-readable feature names, index-aligned with FeatureVector
/// (index 0 = Table-1 feature 1).
const char *featureName(unsigned Index);

/// Name of any column in the extended layout: indices below
/// NumInstructionFeatures alias featureName(); the next
/// NumDataflowFeatures name the dataflow columns.
const char *extendedFeatureName(unsigned Index);

struct FeatureOptions {
  SliceOptions Slice;
  /// Append the NumDataflowFeatures dataflow-derived columns. Off by
  /// default: the paper's 31-feature SVM layout stays bit-compatible.
  bool IncludeDataflowFeatures = false;
};

/// Extracts all feature vectors for a function in one pass, amortizing the
/// CFG analyses. Results are index-aligned with the function's instruction
/// layout order.
class FeatureExtractor {
public:
  explicit FeatureExtractor(const SliceOptions &SliceOpts)
      : Opts{SliceOpts, false} {}
  explicit FeatureExtractor(const FeatureOptions &Opts = {}) : Opts(Opts) {}

  /// Width of the rows extractModuleRows() produces (31 or 39).
  unsigned numFeatures() const {
    return NumInstructionFeatures +
           (Opts.IncludeDataflowFeatures ? NumDataflowFeatures : 0);
  }

  /// Features of a single instruction (Table-1 columns only).
  FeatureVector extract(const Instruction *I) const;

  /// Features of every instruction in \p M, indexed by instruction id (the
  /// module must be renumber()-ed). Table-1 columns only.
  std::vector<FeatureVector> extractModule(const Module &M) const;

  /// Variable-width rows of numFeatures() columns, indexed by instruction
  /// id: the Table-1 features, followed by the dataflow columns when
  /// enabled. Rows feed ml/Dataset directly.
  std::vector<std::vector<double>> extractModuleRows(const Module &M) const;

private:
  FeatureOptions Opts;
};

} // namespace ipas

#endif // IPAS_ANALYSIS_FEATURES_H
