//===- analysis/Slicing.cpp ---------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Slicing.h"

#include <map>
#include <vector>

using namespace ipas;

const Value *ipas::pointerRoot(const Value *Ptr) {
  while (true) {
    if (const auto *Gep = dyn_cast<GepInst>(Ptr)) {
      Ptr = Gep->base();
      continue;
    }
    if (isa<AllocaInst>(Ptr) || isa<Argument>(Ptr) || isa<CallInst>(Ptr) ||
        isa<LoadInst>(Ptr) || isa<PhiInst>(Ptr) || isa<SelectInst>(Ptr))
      return Ptr;
    if (isa<ConstantInt>(Ptr))
      return nullptr;
    return Ptr;
  }
}

std::set<const Instruction *>
ipas::forwardSlice(const Instruction *Start, const SliceOptions &Opts) {
  const Function *F = Start->parent()->parent();

  // Pre-index loads by their pointer root for the memory extension.
  std::map<const Value *, std::vector<const Instruction *>> LoadsByRoot;
  if (Opts.ThroughMemory)
    for (BasicBlock *BB : *F)
      for (Instruction *I : *BB)
        if (auto *Load = dyn_cast<LoadInst>(I))
          if (const Value *Root = pointerRoot(Load->pointer()))
            LoadsByRoot[Root].push_back(Load);

  std::set<const Instruction *> Slice;
  std::vector<const Instruction *> Work;

  auto Enqueue = [&](const Instruction *I) {
    if (I != Start && Slice.insert(I).second)
      Work.push_back(I);
  };

  // Seed with direct users.
  for (const Instruction *User : Start->users())
    Enqueue(User);

  while (!Work.empty()) {
    const Instruction *I = Work.back();
    Work.pop_back();

    for (const Instruction *User : I->users())
      Enqueue(User);

    if (!Opts.ThroughMemory)
      continue;
    if (const auto *Store = dyn_cast<StoreInst>(I)) {
      // A tainted store may corrupt the pointed-to object; every load from
      // the same base object can observe it.
      if (const Value *Root = pointerRoot(Store->pointer())) {
        auto It = LoadsByRoot.find(Root);
        if (It != LoadsByRoot.end())
          for (const Instruction *Load : It->second)
            Enqueue(Load);
      }
    }
  }
  return Slice;
}
