//===- analysis/Slicing.cpp ---------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Slicing.h"

#include "analysis/CallGraph.h"

#include <cassert>
#include <map>
#include <vector>

using namespace ipas;

const Value *ipas::pointerRoot(const Value *Ptr) {
  while (true) {
    if (const auto *Gep = dyn_cast<GepInst>(Ptr)) {
      Ptr = Gep->base();
      continue;
    }
    if (isa<AllocaInst>(Ptr) || isa<Argument>(Ptr) || isa<CallInst>(Ptr) ||
        isa<LoadInst>(Ptr) || isa<PhiInst>(Ptr) || isa<SelectInst>(Ptr))
      return Ptr;
    if (isa<ConstantInt>(Ptr))
      return nullptr;
    return Ptr;
  }
}

std::set<const Instruction *>
ipas::forwardSlice(const Instruction *Start, const SliceOptions &Opts) {
  assert((!Opts.FollowCalls || Opts.CG) &&
         "FollowCalls requires a CallGraph in SliceOptions::CG");

  // Loads indexed by pointer root, built lazily per function: the
  // intraprocedural slice only ever touches one function, and the
  // interprocedural one indexes exactly the functions taint reaches.
  using RootIndex =
      std::map<const Value *, std::vector<const Instruction *>>;
  std::map<const Function *, RootIndex> LoadIndex;
  auto LoadsFor = [&](const Function *F) -> RootIndex & {
    auto It = LoadIndex.find(F);
    if (It != LoadIndex.end())
      return It->second;
    RootIndex &Index = LoadIndex[F];
    for (const BasicBlock *BB : *F)
      for (const Instruction *I : *BB)
        if (const auto *Load = dyn_cast<LoadInst>(I))
          if (const Value *Root = pointerRoot(Load->pointer()))
            Index[Root].push_back(Load);
    return Index;
  };

  std::set<const Instruction *> Slice;
  std::vector<const Instruction *> Work;

  auto Enqueue = [&](const Instruction *I) {
    if (I != Start && Slice.insert(I).second)
      Work.push_back(I);
  };

  // Def-use successors of a tainted value, including the call-boundary
  // edge from a tainted actual into the callee's formal parameter.
  auto PropagateUsers = [&](const Instruction *V) {
    for (const Instruction *User : V->users())
      Enqueue(User);
    if (!Opts.FollowCalls)
      return;
    for (const Instruction *User : V->users()) {
      const auto *Call = dyn_cast<CallInst>(User);
      if (!Call || Call->isIntrinsicCall() || !Call->callee())
        continue;
      const Function *Callee = Call->callee();
      for (unsigned K = 0, E = Call->numArgs(); K != E; ++K)
        if (Call->arg(K) == V && K < Callee->numArgs())
          for (const Instruction *ArgUser : Callee->arg(K)->users())
            Enqueue(ArgUser);
    }
  };

  PropagateUsers(Start);

  while (!Work.empty()) {
    const Instruction *I = Work.back();
    Work.pop_back();

    PropagateUsers(I);

    // Taint reaching a return corrupts the call result at every call
    // site of the returning function.
    if (Opts.FollowCalls && isa<RetInst>(I)) {
      const Function *G = I->parent()->parent();
      for (const Function *Caller : Opts.CG->callers(G))
        for (const BasicBlock *BB : *Caller)
          for (const Instruction *C : *BB)
            if (const auto *Call = dyn_cast<CallInst>(C))
              if (!Call->isIntrinsicCall() && Call->callee() == G)
                Enqueue(Call);
    }

    if (!Opts.ThroughMemory)
      continue;
    if (const auto *Store = dyn_cast<StoreInst>(I)) {
      // A tainted store may corrupt the pointed-to object; every load from
      // the same base object can observe it.
      if (const Value *Root = pointerRoot(Store->pointer())) {
        RootIndex &Index = LoadsFor(Store->parent()->parent());
        auto It = Index.find(Root);
        if (It != Index.end())
          for (const Instruction *Load : It->second)
            Enqueue(Load);
      }
    }
  }
  return Slice;
}
