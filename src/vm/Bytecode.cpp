//===- vm/Bytecode.cpp ---------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Bytecode.h"

#include "interp/Interpreter.h"
#include "ir/BasicBlock.h"
#include "ir/Instruction.h"
#include "ir/Module.h"
#include "support/Casting.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

using namespace ipas;
using namespace ipas::vm;

const char *ipas::vm::vmOpName(VmOp Op) {
  static const char *const Names[] = {
#define IPAS_VM_OP_NAME(N) #N,
      IPAS_VM_OPS(IPAS_VM_OP_NAME)
#undef IPAS_VM_OP_NAME
  };
  return Names[static_cast<unsigned>(Op)];
}

namespace {

/// Flip width of a committed value: the i1/64-bit split RtValue::flipBit
/// derives from the result type.
uint8_t widthOf(Type T) { return T.isI1() ? 1 : 64; }

class Compiler {
public:
  Compiler(const ModuleLayout &Layout, VmProgram &P, std::string &Err)
      : Layout(Layout), P(P), Err(Err) {}

  bool run() {
    const Module &M = Layout.module();
    for (size_t I = 0; I != M.numFunctions(); ++I) {
      FnIndex[M.function(I)] = static_cast<uint32_t>(I);
      P.FunctionIndex[M.function(I)->name()] = static_cast<uint32_t>(I);
    }
    P.Functions.resize(M.numFunctions());
    for (size_t I = 0; I != M.numFunctions(); ++I)
      if (!compileFunction(M.function(I), P.Functions[I]))
        return false;
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    Err = Msg;
    return false;
  }

  size_t emit(VmInst In) {
    P.Code.push_back(In);
    return P.Code.size() - 1;
  }

  static size_t leadingPhis(const BasicBlock *BB) {
    size_t N = 0;
    while (N < BB->size() && BB->at(N)->opcode() == Opcode::Phi)
      ++N;
    return N;
  }

  uint16_t constReg(uint64_t Bits) {
    auto It = ConstReg.find(Bits);
    if (It != ConstReg.end())
      return It->second;
    uint16_t Reg = static_cast<uint16_t>(VF->ConstBase + VF->ConstPool.size());
    VF->ConstPool.push_back(Bits);
    ConstReg.emplace(Bits, Reg);
    return Reg;
  }

  /// Register holding \p V in the current frame (allocating a constant
  /// register on first use).
  uint16_t regOf(const Value *V) {
    switch (V->kind()) {
    case ValueKind::Argument:
      return static_cast<uint16_t>(cast<Argument>(V)->index());
    case ValueKind::Instruction:
      return static_cast<uint16_t>(
          Layout.slotOfInstruction(cast<Instruction>(V)));
    case ValueKind::ConstantInt:
      return constReg(
          static_cast<uint64_t>(cast<ConstantInt>(V)->value()));
    case ValueKind::ConstantFP:
      return constReg(std::bit_cast<uint64_t>(cast<ConstantFP>(V)->value()));
    }
    return 0;
  }

  /// Emits the pre-resolved phi moves for the CFG edge From -> To: each
  /// leading phi's incoming value is copied into its staging register.
  /// Stage ops are pure data movement (no step), mirroring the
  /// interpreter's simultaneous read of all incoming values.
  bool emitEdgeMoves(const BasicBlock *From, const BasicBlock *To) {
    size_t NumPhis = leadingPhis(To);
    for (size_t K = 0; K != NumPhis; ++K) {
      const auto *Phi = cast<PhiInst>(To->at(K));
      const Value *V = Phi->incomingValueFor(From);
      if (!V)
        return fail("phi in '" + VF->Name +
                    "' has no incoming value for a predecessor edge");
      VmInst In;
      In.Op = VmOp::Stage;
      In.A = StageReg.at(Phi);
      In.B = regOf(V);
      In.Id = Phi->id();
      emit(In);
    }
    return true;
  }

  bool compileFunction(const Function *F, VmFunction &Out) {
    VF = &Out;
    ConstReg.clear();
    StageReg.clear();
    BlockPC.clear();
    BlockFixups.clear();
    Trampolines.clear();

    Out.Name = F->name();
    Out.CodeStart = static_cast<uint32_t>(P.Code.size());
    Out.NumArgs = static_cast<uint16_t>(F->numArgs());
    Out.RetWidth =
        F->returnType().isVoid() ? 0 : widthOf(F->returnType());

    unsigned FrameSlots = Layout.frameSlots(F);
    unsigned NumStage = 0;
    for (size_t BI = 0; BI != F->numBlocks(); ++BI) {
      const BasicBlock *BB = F->block(BI);
      size_t NumPhis = leadingPhis(BB);
      for (size_t K = 0; K != NumPhis; ++K)
        StageReg[cast<PhiInst>(BB->at(K))] =
            static_cast<uint16_t>(FrameSlots + NumStage++);
      // The interpreter's phi group covers only the leading run; a phi
      // below a non-phi instruction is outside both contracts.
      for (size_t K = NumPhis; K != BB->size(); ++K)
        if (BB->at(K)->opcode() == Opcode::Phi)
          return fail("phi below non-phi instruction in '" + Out.Name + "'");
    }
    if (FrameSlots + NumStage >= kNoReg)
      return fail("function '" + Out.Name + "' needs too many registers");
    Out.FirstStage = static_cast<uint16_t>(FrameSlots);
    Out.NumRegs = static_cast<uint16_t>(FrameSlots + NumStage);
    Out.ConstBase = Out.NumRegs;

    if (leadingPhis(F->entry()) != 0)
      return fail("entry block of '" + Out.Name + "' has phis");

    for (size_t BI = 0; BI != F->numBlocks(); ++BI) {
      const BasicBlock *BB = F->block(BI);
      BlockPC[BB] = static_cast<int32_t>(P.Code.size());
      size_t NumPhis = leadingPhis(BB);
      if (NumPhis) {
        VmInst In;
        In.Op = VmOp::PhiCommit;
        In.A = static_cast<uint16_t>(NumPhis);
        In.X = static_cast<int32_t>(P.PhiMetas.size());
        In.Id = BB->at(0)->id();
        for (size_t K = 0; K != NumPhis; ++K) {
          const auto *Phi = cast<PhiInst>(BB->at(K));
          VmPhiMeta Meta;
          Meta.Dest =
              static_cast<uint16_t>(Layout.slotOfInstruction(Phi));
          Meta.Stage = StageReg.at(Phi);
          Meta.Width = widthOf(Phi->type());
          Meta.Id = Phi->id();
          P.PhiMetas.push_back(Meta);
        }
        emit(In);
      }
      for (size_t K = NumPhis; K != BB->size(); ++K)
        if (!compileInst(BB, BB->at(K)))
          return false;
    }

    // Edge trampolines for conditional branches into phi blocks: the
    // moves belong to the edge, so they run only once the condition has
    // picked it. Each trampoline ends in a step-free Goto (the
    // interpreter's CondBr transfers control directly).
    for (const PendingTrampoline &T : Trampolines) {
      int32_t PC = static_cast<int32_t>(P.Code.size());
      if (T.Field == 0)
        P.Code[T.InstIdx].X = PC;
      else
        P.Code[T.InstIdx].Y = PC;
      if (!emitEdgeMoves(T.From, T.To))
        return false;
      VmInst Go;
      Go.Op = VmOp::Goto;
      BlockFixups.push_back({emit(Go), 0, T.To});
    }

    for (const Fixup &Fx : BlockFixups) {
      auto It = BlockPC.find(Fx.Target);
      if (It == BlockPC.end())
        return fail("branch to unknown block in '" + Out.Name + "'");
      if (Fx.Field == 0)
        P.Code[Fx.InstIdx].X = It->second;
      else
        P.Code[Fx.InstIdx].Y = It->second;
    }

    Out.CodeEnd = static_cast<uint32_t>(P.Code.size());
    if (Out.regsTotal() >= kNoReg)
      return fail("function '" + Out.Name + "' needs too many registers");
    if (P.Code.size() > static_cast<size_t>(INT32_MAX))
      return fail("program too large for 32-bit code offsets");
    return true;
  }

  bool compileInst(const BasicBlock *BB, const Instruction *I) {
    VmInst In;
    In.Id = I->id();
    auto dest = [&]() {
      return static_cast<uint16_t>(Layout.slotOfInstruction(I));
    };

    switch (I->opcode()) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::AShr: {
      unsigned Sel = 0;
      switch (I->opcode()) {
      case Opcode::Add: Sel = 0; break;
      case Opcode::Sub: Sel = 1; break;
      case Opcode::Mul: Sel = 2; break;
      case Opcode::And: Sel = 3; break;
      case Opcode::Or: Sel = 4; break;
      case Opcode::Xor: Sel = 5; break;
      case Opcode::Shl: Sel = 6; break;
      default: Sel = 7; break; // AShr
      }
      if (I->type().isI1()) {
        In.Op = VmOp::BinI1;
        In.D = static_cast<uint16_t>(Sel);
      } else {
        In.Op = static_cast<VmOp>(static_cast<unsigned>(VmOp::BinAdd) + Sel);
      }
      In.A = dest();
      In.B = regOf(I->operand(0));
      In.C = regOf(I->operand(1));
      break;
    }
    case Opcode::SDiv:
    case Opcode::SRem:
      In.Op = I->opcode() == Opcode::SDiv ? VmOp::SDiv : VmOp::SRem;
      In.A = dest();
      In.B = regOf(I->operand(0));
      In.C = regOf(I->operand(1));
      break;
    case Opcode::FAdd:
    case Opcode::FSub:
    case Opcode::FMul:
    case Opcode::FDiv: {
      unsigned Sel = static_cast<unsigned>(I->opcode()) -
                     static_cast<unsigned>(Opcode::FAdd);
      In.Op = static_cast<VmOp>(static_cast<unsigned>(VmOp::FAdd) + Sel);
      In.A = dest();
      In.B = regOf(I->operand(0));
      In.C = regOf(I->operand(1));
      break;
    }
    case Opcode::ICmp:
    case Opcode::FCmp: {
      const auto *Cmp = cast<CmpInst>(I);
      // Pointer compares are unsigned, like the interpreter's eval.
      VmOp BaseOp = I->opcode() == Opcode::FCmp ? VmOp::FCmpEQ
                    : Cmp->lhs()->type().isPtr() ? VmOp::UCmpEQ
                                                 : VmOp::ICmpEQ;
      unsigned Sel = 0;
      switch (Cmp->predicate()) {
      case CmpPredicate::EQ: Sel = 0; break;
      case CmpPredicate::NE: Sel = 1; break;
      case CmpPredicate::LT: Sel = 2; break;
      case CmpPredicate::LE: Sel = 3; break;
      case CmpPredicate::GT: Sel = 4; break;
      case CmpPredicate::GE: Sel = 5; break;
      }
      In.Op = static_cast<VmOp>(static_cast<unsigned>(BaseOp) + Sel);
      In.A = dest();
      In.B = regOf(I->operand(0));
      In.C = regOf(I->operand(1));
      break;
    }
    case Opcode::SIToFP:
      In.Op = VmOp::SIToFP;
      In.A = dest();
      In.B = regOf(I->operand(0));
      break;
    case Opcode::FPToSI:
      In.Op = VmOp::FPToSI;
      In.A = dest();
      In.B = regOf(I->operand(0));
      break;
    case Opcode::ZExt:
      In.Op = VmOp::ZExt;
      In.A = dest();
      In.B = regOf(I->operand(0));
      break;
    case Opcode::BitcastF2I:
    case Opcode::BitcastI2F:
      In.Op = VmOp::Bitcast;
      In.A = dest();
      In.B = regOf(I->operand(0));
      break;
    case Opcode::Alloca:
      In.Op = VmOp::Alloca;
      In.A = dest();
      In.X = static_cast<int32_t>(P.Aux64.size());
      P.Aux64.push_back(cast<AllocaInst>(I)->slotCount());
      break;
    case Opcode::Load:
      In.Op = I->type().isI1() ? VmOp::LoadI1 : VmOp::Load;
      In.A = dest();
      In.B = regOf(I->operand(0));
      break;
    case Opcode::Store:
      In.Op = VmOp::Store;
      In.B = regOf(I->operand(0)); // value
      In.C = regOf(I->operand(1)); // address
      break;
    case Opcode::Gep:
      In.Op = VmOp::Gep;
      In.A = dest();
      In.B = regOf(I->operand(0));
      In.C = regOf(I->operand(1));
      break;
    case Opcode::Select:
      In.Op = I->type().isI1() ? VmOp::SelectI1 : VmOp::Select;
      In.A = dest();
      In.B = regOf(I->operand(0));
      In.C = regOf(I->operand(1));
      In.D = regOf(I->operand(2));
      break;
    case Opcode::Check:
      In.Op = VmOp::Check;
      In.B = regOf(I->operand(0));
      In.C = regOf(I->operand(1));
      break;
    case Opcode::Call:
      return compileCall(cast<CallInst>(I));
    case Opcode::Br: {
      const auto *Br = cast<BranchInst>(I);
      // Unconditional edge: the moves can sit inline before the branch
      // (staging registers are invisible to the program).
      if (!emitEdgeMoves(BB, Br->target()))
        return false;
      In.Op = VmOp::Br;
      BlockFixups.push_back({P.Code.size(), 0, Br->target()});
      emit(In);
      return true;
    }
    case Opcode::CondBr: {
      const auto *CBr = cast<CondBranchInst>(I);
      In.Op = VmOp::CondBr;
      In.B = regOf(CBr->condition());
      size_t Idx = emit(In);
      auto edge = [&](int Field, const BasicBlock *To) {
        if (leadingPhis(To) == 0)
          BlockFixups.push_back({Idx, Field, To});
        else
          Trampolines.push_back({Idx, Field, BB, To});
      };
      edge(0, CBr->trueTarget());
      edge(1, CBr->falseTarget());
      return true;
    }
    case Opcode::Ret: {
      const auto *Ret = cast<RetInst>(I);
      if (Ret->hasReturnValue()) {
        In.Op = VmOp::Ret;
        In.B = regOf(I->operand(0));
      } else {
        In.Op = VmOp::RetVoid;
      }
      break;
    }
    case Opcode::Phi:
      return fail("phi below non-phi instruction in '" + VF->Name + "'");
    }
    emit(In);
    return true;
  }

  bool compileCall(const CallInst *Call) {
    VmInst In;
    In.Id = Call->id();
    if (!Call->isIntrinsicCall()) {
      In.Op = VmOp::Call;
      In.A = Call->producesValue()
                 ? static_cast<uint16_t>(Layout.slotOfInstruction(Call))
                 : kNoReg;
      In.B = static_cast<uint16_t>(Call->numArgs());
      auto It = FnIndex.find(Call->callee());
      if (It == FnIndex.end())
        return fail("call to unknown function in '" + VF->Name + "'");
      In.X = static_cast<int32_t>(It->second);
      In.Y = static_cast<int32_t>(P.ArgRegs.size());
      for (unsigned K = 0; K != Call->numArgs(); ++K)
        P.ArgRegs.push_back(regOf(Call->arg(K)));
      emit(In);
      return true;
    }

    auto unary = [&](VmOp Op) {
      In.Op = Op;
      In.A = static_cast<uint16_t>(Layout.slotOfInstruction(Call));
      In.B = regOf(Call->arg(0));
    };
    auto binary = [&](VmOp Op) {
      unary(Op);
      In.C = regOf(Call->arg(1));
    };
    switch (Call->intrinsicId()) {
    case Intrinsic::Sqrt: unary(VmOp::ISqrt); break;
    case Intrinsic::Fabs: unary(VmOp::IFabs); break;
    case Intrinsic::Sin: unary(VmOp::ISin); break;
    case Intrinsic::Cos: unary(VmOp::ICos); break;
    case Intrinsic::Exp: unary(VmOp::IExp); break;
    case Intrinsic::Log: unary(VmOp::ILog); break;
    case Intrinsic::Pow: binary(VmOp::IPow); break;
    case Intrinsic::Floor: unary(VmOp::IFloor); break;
    case Intrinsic::FMin: binary(VmOp::IFMin); break;
    case Intrinsic::FMax: binary(VmOp::IFMax); break;
    case Intrinsic::IMin: binary(VmOp::IIMin); break;
    case Intrinsic::IMax: binary(VmOp::IIMax); break;
    case Intrinsic::Malloc: unary(VmOp::IMalloc); break;
    case Intrinsic::Free:
      In.Op = VmOp::IFree;
      In.B = regOf(Call->arg(0));
      break;
    case Intrinsic::RandSeed:
      In.Op = VmOp::IRandSeed;
      In.B = regOf(Call->arg(0));
      break;
    case Intrinsic::RandI64: unary(VmOp::IRandI64); break;
    case Intrinsic::RandF64:
      In.Op = VmOp::IRandF64;
      In.A = static_cast<uint16_t>(Layout.slotOfInstruction(Call));
      break;
    case Intrinsic::MpiRank:
      In.Op = VmOp::IMpiRank;
      In.A = static_cast<uint16_t>(Layout.slotOfInstruction(Call));
      break;
    case Intrinsic::MpiSize:
      In.Op = VmOp::IMpiSize;
      In.A = static_cast<uint16_t>(Layout.slotOfInstruction(Call));
      break;
    case Intrinsic::MpiBarrier:
      In.Op = VmOp::IMpiBarrier;
      break;
    case Intrinsic::MpiAllreduceSumD:
    case Intrinsic::MpiAllreduceMaxD:
    case Intrinsic::MpiAllreduceSumI:
    case Intrinsic::MpiBcastD:
    case Intrinsic::MpiBcastI:
      unary(VmOp::IMpiIdentity);
      break;
    case Intrinsic::MpiAllgatherD:
    case Intrinsic::MpiAlltoallD:
      In.Op = VmOp::IMpiCopy;
      In.B = regOf(Call->arg(0)); // send
      In.C = regOf(Call->arg(1)); // recv
      In.D = regOf(Call->arg(2)); // slot count
      break;
    case Intrinsic::None:
      return fail("intrinsic call without id in '" + VF->Name + "'");
    }
    emit(In);
    return true;
  }

  struct Fixup {
    size_t InstIdx;
    int Field; ///< 0 = X, 1 = Y.
    const BasicBlock *Target;
  };
  struct PendingTrampoline {
    size_t InstIdx;
    int Field;
    const BasicBlock *From;
    const BasicBlock *To;
  };

  const ModuleLayout &Layout;
  VmProgram &P;
  std::string &Err;
  VmFunction *VF = nullptr;
  std::map<const Function *, uint32_t> FnIndex;
  std::map<uint64_t, uint16_t> ConstReg;
  std::map<const Instruction *, uint16_t> StageReg;
  std::map<const BasicBlock *, int32_t> BlockPC;
  std::vector<Fixup> BlockFixups;
  std::vector<PendingTrampoline> Trampolines;
};

} // namespace

std::unique_ptr<VmProgram> ipas::vm::compile(const ModuleLayout &Layout,
                                             std::string *Err) {
  auto P = std::make_unique<VmProgram>();
  std::string LocalErr;
  Compiler C(Layout, *P, LocalErr);
  if (!C.run()) {
    if (Err)
      *Err = LocalErr;
    return nullptr;
  }
  return P;
}

bool ipas::vm::injectSelftestBug(VmProgram &P) {
  // Prefer an operand swap on a non-commutative op; fall back to turning
  // an addition into a subtraction.
  for (VmInst &In : P.Code) {
    if (In.Op == VmOp::BinSub || In.Op == VmOp::SDiv || In.Op == VmOp::SRem ||
        In.Op == VmOp::FSub || In.Op == VmOp::FDiv) {
      std::swap(In.B, In.C);
      return true;
    }
  }
  for (VmInst &In : P.Code) {
    if (In.Op == VmOp::ICmpLT) {
      In.Op = VmOp::ICmpLE;
      return true;
    }
    if (In.Op == VmOp::BinAdd) {
      In.Op = VmOp::BinSub;
      return true;
    }
  }
  return false;
}

namespace {

std::string regName(const VmFunction &F, uint16_t R) {
  char Buf[16];
  if (R == kNoReg)
    return "-";
  if (R >= F.ConstBase)
    std::snprintf(Buf, sizeof(Buf), "c%u", R - F.ConstBase);
  else if (R >= F.FirstStage)
    std::snprintf(Buf, sizeof(Buf), "s%u", R - F.FirstStage);
  else
    std::snprintf(Buf, sizeof(Buf), "r%u", R);
  return Buf;
}

void disassembleFunction(const VmProgram &P, const VmFunction &F,
                         std::string &Out) {
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "func %s: args=%u slots=%u stage=%u consts=%zu ret=w%u\n",
                F.Name.c_str(), F.NumArgs, F.FirstStage,
                F.NumRegs - F.FirstStage, F.ConstPool.size(), F.RetWidth);
  Out += Buf;
  for (size_t K = 0; K != F.ConstPool.size(); ++K) {
    std::snprintf(Buf, sizeof(Buf), "  const c%zu = 0x%016" PRIx64 "\n", K,
                  F.ConstPool[K]);
    Out += Buf;
  }
  auto reg = [&](uint16_t R) { return regName(F, R); };
  for (uint32_t PC = F.CodeStart; PC != F.CodeEnd; ++PC) {
    const VmInst &In = P.Code[PC];
    std::snprintf(Buf, sizeof(Buf), "  %4u: %-10s", PC, vmOpName(In.Op));
    Out += Buf;
    switch (In.Op) {
    case VmOp::BinAdd:
    case VmOp::BinSub:
    case VmOp::BinMul:
    case VmOp::BinAnd:
    case VmOp::BinOr:
    case VmOp::BinXor:
    case VmOp::BinShl:
    case VmOp::BinAShr:
    case VmOp::SDiv:
    case VmOp::SRem:
    case VmOp::FAdd:
    case VmOp::FSub:
    case VmOp::FMul:
    case VmOp::FDiv:
    case VmOp::ICmpEQ:
    case VmOp::ICmpNE:
    case VmOp::ICmpLT:
    case VmOp::ICmpLE:
    case VmOp::ICmpGT:
    case VmOp::ICmpGE:
    case VmOp::UCmpEQ:
    case VmOp::UCmpNE:
    case VmOp::UCmpLT:
    case VmOp::UCmpLE:
    case VmOp::UCmpGT:
    case VmOp::UCmpGE:
    case VmOp::FCmpEQ:
    case VmOp::FCmpNE:
    case VmOp::FCmpLT:
    case VmOp::FCmpLE:
    case VmOp::FCmpGT:
    case VmOp::FCmpGE:
    case VmOp::Gep:
    case VmOp::IPow:
    case VmOp::IFMin:
    case VmOp::IFMax:
    case VmOp::IIMin:
    case VmOp::IIMax:
      std::snprintf(Buf, sizeof(Buf), "%s <- %s, %s  id=%u",
                    reg(In.A).c_str(), reg(In.B).c_str(), reg(In.C).c_str(),
                    In.Id);
      break;
    case VmOp::BinI1:
      std::snprintf(Buf, sizeof(Buf), "%s <- %s, %s sel=%u  id=%u",
                    reg(In.A).c_str(), reg(In.B).c_str(), reg(In.C).c_str(),
                    In.D, In.Id);
      break;
    case VmOp::SIToFP:
    case VmOp::FPToSI:
    case VmOp::ZExt:
    case VmOp::Bitcast:
    case VmOp::Load:
    case VmOp::LoadI1:
    case VmOp::ISqrt:
    case VmOp::IFabs:
    case VmOp::ISin:
    case VmOp::ICos:
    case VmOp::IExp:
    case VmOp::ILog:
    case VmOp::IFloor:
    case VmOp::IMalloc:
    case VmOp::IRandI64:
    case VmOp::IMpiIdentity:
      std::snprintf(Buf, sizeof(Buf), "%s <- %s  id=%u", reg(In.A).c_str(),
                    reg(In.B).c_str(), In.Id);
      break;
    case VmOp::Stage:
      std::snprintf(Buf, sizeof(Buf), "%s <- %s", reg(In.A).c_str(),
                    reg(In.B).c_str());
      break;
    case VmOp::Alloca:
      std::snprintf(Buf, sizeof(Buf), "%s <- %" PRIu64 " slots  id=%u",
                    reg(In.A).c_str(), P.Aux64[In.X], In.Id);
      break;
    case VmOp::Store:
      std::snprintf(Buf, sizeof(Buf), "[%s] <- %s  id=%u", reg(In.C).c_str(),
                    reg(In.B).c_str(), In.Id);
      break;
    case VmOp::Select:
    case VmOp::SelectI1:
      std::snprintf(Buf, sizeof(Buf), "%s <- %s ? %s : %s  id=%u",
                    reg(In.A).c_str(), reg(In.B).c_str(), reg(In.C).c_str(),
                    reg(In.D).c_str(), In.Id);
      break;
    case VmOp::Check:
      std::snprintf(Buf, sizeof(Buf), "%s == %s  id=%u", reg(In.B).c_str(),
                    reg(In.C).c_str(), In.Id);
      break;
    case VmOp::PhiCommit: {
      std::snprintf(Buf, sizeof(Buf), "n=%u", In.A);
      Out += Buf;
      for (unsigned K = 0; K != In.A; ++K) {
        const VmPhiMeta &M = P.PhiMetas[In.X + K];
        std::snprintf(Buf, sizeof(Buf), " [%s <- %s w%u id=%u]",
                      regName(F, M.Dest).c_str(), regName(F, M.Stage).c_str(),
                      M.Width, M.Id);
        Out += Buf;
      }
      Buf[0] = 0;
      break;
    }
    case VmOp::Br:
    case VmOp::Goto:
      std::snprintf(Buf, sizeof(Buf), "-> %d%s", In.X,
                    In.X == static_cast<int32_t>(PC) + 1 ? "  ; fallthrough"
                                                         : "");
      break;
    case VmOp::CondBr:
      std::snprintf(Buf, sizeof(Buf), "%s ? -> %d : -> %d  id=%u",
                    reg(In.B).c_str(), In.X, In.Y, In.Id);
      break;
    case VmOp::Call:
      std::snprintf(Buf, sizeof(Buf), "%s <- %s(", reg(In.A).c_str(),
                    P.Functions[In.X].Name.c_str());
      Out += Buf;
      for (unsigned K = 0; K != In.B; ++K) {
        if (K)
          Out += ", ";
        Out += reg(P.ArgRegs[In.Y + K]);
      }
      std::snprintf(Buf, sizeof(Buf), ")  id=%u", In.Id);
      break;
    case VmOp::Ret:
      std::snprintf(Buf, sizeof(Buf), "%s  id=%u", reg(In.B).c_str(), In.Id);
      break;
    case VmOp::RetVoid:
    case VmOp::IMpiBarrier:
      std::snprintf(Buf, sizeof(Buf), "id=%u", In.Id);
      break;
    case VmOp::IFree:
    case VmOp::IRandSeed:
      std::snprintf(Buf, sizeof(Buf), "%s  id=%u", reg(In.B).c_str(), In.Id);
      break;
    case VmOp::IRandF64:
    case VmOp::IMpiRank:
    case VmOp::IMpiSize:
      std::snprintf(Buf, sizeof(Buf), "%s <-  id=%u", reg(In.A).c_str(),
                    In.Id);
      break;
    case VmOp::IMpiCopy:
      std::snprintf(Buf, sizeof(Buf), "[%s] <- [%s] x %s  id=%u",
                    reg(In.C).c_str(), reg(In.B).c_str(), reg(In.D).c_str(),
                    In.Id);
      break;
    }
    Out += Buf;
    Out += '\n';
  }
}

} // namespace

std::string ipas::vm::disassemble(const VmProgram &P,
                                  const std::string &FnName) {
  std::string Out;
  for (const VmFunction &F : P.Functions) {
    if (!FnName.empty() && F.Name != FnName)
      continue;
    disassembleFunction(P, F, Out);
  }
  return Out;
}
