//===- vm/VM.h - Threaded-code VM for campaign execution ------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes vm/Bytecode.h programs with direct-threaded dispatch
/// (computed goto under GCC/Clang, a portable switch otherwise — define
/// IPAS_VM_FORCE_SWITCH to force the fallback). The VM is a drop-in
/// replacement for the interpreter on the campaign hot path and clones
/// its observable semantics exactly: step and value-step accounting,
/// trap conditions, fault-injection sites, output bits. Anything it
/// cannot express (observers, site counts, value-step traces,
/// multi-rank MPI) stays on the interpreter — the harness falls back
/// per run.
///
/// Two things make it fast:
///  - threaded dispatch over flat pre-decoded instructions with all
///    operands as register indices (no tree walk, no operand switch);
///  - a pooled arena (VmArena) with the interpreter Memory's exact
///    address layout but O(dirty bytes) reset instead of a fresh ~9 MB
///    zero-fill per run — the dominant per-run cost of the interpreter
///    on campaign workloads.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_VM_VM_H
#define IPAS_VM_VM_H

#include "interp/Interpreter.h"
#include "vm/Bytecode.h"

#include <algorithm>
#include <vector>

namespace ipas {
namespace vm {

/// Flat address space with the same layout, bounds rules and bump
/// allocators as interp/Memory.h (addresses are observable values: a
/// flipped pointer bit must produce the same in/out-of-bounds verdict on
/// either backend). Reset cost is proportional to the bytes actually
/// written, not the arena size, so a pooled context makes back-to-back
/// campaign runs cheap.
class VmArena {
public:
  explicit VmArena(const Memory::Config &Cfg)
      : Data(Memory::GuardBytes + Cfg.StackBytes + Cfg.HeapBytes, 0),
        FirstValid(Memory::GuardBytes),
        Limit(Data.size()),
        StackBase(Memory::GuardBytes),
        StackLimit(StackBase + Cfg.StackBytes),
        StackPtr(StackBase),
        HeapBase(StackLimit),
        HeapPtr(HeapBase),
        DirtyLo(Limit),
        DirtyHi(FirstValid) {}

  /// Rewinds both allocators and re-zeroes every byte written since the
  /// last reset, restoring the freshly-constructed state.
  void reset() {
    if (DirtyHi > DirtyLo)
      std::fill(Data.begin() + static_cast<ptrdiff_t>(DirtyLo),
                Data.begin() + static_cast<ptrdiff_t>(DirtyHi), uint8_t(0));
    DirtyLo = Limit;
    DirtyHi = FirstValid;
    StackPtr = StackBase;
    HeapPtr = HeapBase;
  }

  uint64_t allocaBytes(uint64_t Bytes) {
    Bytes = (Bytes + 7) & ~7ull;
    if (Bytes > StackLimit - StackPtr)
      return 0;
    uint64_t Addr = StackPtr;
    StackPtr += Bytes;
    return Addr;
  }

  uint64_t mallocBytes(uint64_t Bytes) {
    Bytes = (Bytes + 7) & ~7ull;
    if (Bytes == 0)
      Bytes = 8;
    if (Bytes > Limit - HeapPtr)
      return 0;
    uint64_t Addr = HeapPtr;
    HeapPtr += Bytes;
    return Addr;
  }

  uint64_t stackPointer() const { return StackPtr; }
  void restoreStackPointer(uint64_t SP) { StackPtr = SP; }

  bool validRange(uint64_t Addr, uint64_t Size) const {
    return Addr >= FirstValid && Size <= Limit && Addr <= Limit - Size;
  }

  uint64_t read64(uint64_t Addr) const {
    uint64_t V;
    std::memcpy(&V, &Data[Addr], sizeof(V));
    return V;
  }

  /// Unchecked 8-byte store; tracks the dirty span (a faulted pointer
  /// can write anywhere inside the valid range, so every store counts).
  void write64(uint64_t Addr, uint64_t V) {
    std::memcpy(&Data[Addr], &V, sizeof(V));
    DirtyLo = std::min(DirtyLo, Addr);
    DirtyHi = std::max(DirtyHi, Addr + 8);
  }

private:
  std::vector<uint8_t> Data;
  uint64_t FirstValid;
  uint64_t Limit;
  uint64_t StackBase, StackLimit, StackPtr;
  uint64_t HeapBase, HeapPtr;
  uint64_t DirtyLo, DirtyHi;
};

/// Reusable execution state for one VmProgram: arena, register stack and
/// frame stack. run() fully resets the context, so one VmContext can
/// serve thousands of campaign runs back to back; it is not
/// thread-safe — use one context per thread (FunctionHarness keeps a
/// pool).
class VmContext {
public:
  struct Config {
    Memory::Config Mem;
    unsigned MaxCallDepth = 512;
    uint64_t WorkloadRngSeed = 0x1234abcd;
  };

  struct Result {
    RunStatus Status = RunStatus::Finished;
    TrapKind Trap = TrapKind::None;
    uint64_t Steps = 0;
    uint64_t ValueSteps = 0;
    RtValue ReturnValue;
    bool FaultInjected = false;
    unsigned FaultedInstructionId = 0;
  };

  VmContext(const VmProgram &P, const Config &Cfg);
  explicit VmContext(const VmProgram &P) : VmContext(P, Config()) {}

  /// Executes function \p FnIndex on \p Args under \p Plan (null = clean)
  /// with the interpreter's cumulative step budget semantics: the budget
  /// is checked before every step, phi groups commit atomically.
  Result run(uint32_t FnIndex, const std::vector<RtValue> &Args,
             const FaultPlan *Plan, uint64_t MaxSteps);

private:
  struct VmFrame {
    const VmFunction *Fn = nullptr;
    uint32_t RegBase = 0;
    uint32_t RetPC = 0;
    uint32_t CallId = 0;
    uint16_t RetReg = kNoReg;
    uint8_t RetWidth = 0;
    uint64_t SavedStackPtr = 0;
  };

  const VmProgram &P;
  Config Cfg;
  VmArena Arena;
  std::vector<uint64_t> RegStack;
  std::vector<VmFrame> Frames;
  Rng WorkloadRng;
};

} // namespace vm
} // namespace ipas

#endif // IPAS_VM_VM_H
