//===- vm/Bytecode.h - Flat bytecode for the campaign VM ------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flat, register-based bytecode compiled from the tree IR, executed by
/// the threaded-code VM in vm/VM.h. The encoding is designed so that the
/// VM can reproduce the tree-walking interpreter's observable semantics
/// *exactly* — same step accounting, same value-step numbering (and
/// therefore the same fault-injection sites), same traps:
///
///  - Registers mirror interp/ModuleLayout: per frame, arguments occupy
///    regs [0, numArgs) and every value-producing instruction keeps its
///    interpreter slot number, so a FaultPlan flips bits in the same
///    (InstructionId, BitIndex) site on either backend. Above the frame
///    slots sit one staging register per phi and one register per
///    distinct constant (materialized at frame entry), making every
///    operand a plain register read.
///  - Basic blocks are laid out in function order; branches carry
///    absolute code offsets, so a branch to the next block is a
///    fallthrough in all but program-counter assignment.
///  - Phi moves are pre-resolved per CFG edge: the edge copies each
///    incoming value into the phi's staging register (Stage ops, not
///    steps), and a single PhiCommit op at the block top performs the
///    interpreter's atomic parallel commit — one budget check for the
///    whole group, then one step + one value step per phi in block
///    order.
///
/// The compiler refuses (returns null) rather than guesses when it meets
/// a construct outside this contract; callers fall back to the
/// interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_VM_BYTECODE_H
#define IPAS_VM_BYTECODE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ipas {

class ModuleLayout;

namespace vm {

/// X-macro over every VM opcode; keeps the enum, the dispatch table and
/// the disassembler mnemonics in one place (order is load-bearing).
#define IPAS_VM_OPS(X)                                                         \
  X(BinAdd)                                                                    \
  X(BinSub)                                                                    \
  X(BinMul)                                                                    \
  X(BinAnd)                                                                    \
  X(BinOr)                                                                     \
  X(BinXor)                                                                    \
  X(BinShl)                                                                    \
  X(BinAShr)                                                                   \
  X(BinI1)                                                                     \
  X(SDiv)                                                                      \
  X(SRem)                                                                      \
  X(FAdd)                                                                      \
  X(FSub)                                                                      \
  X(FMul)                                                                      \
  X(FDiv)                                                                      \
  X(ICmpEQ)                                                                    \
  X(ICmpNE)                                                                    \
  X(ICmpLT)                                                                    \
  X(ICmpLE)                                                                    \
  X(ICmpGT)                                                                    \
  X(ICmpGE)                                                                    \
  X(UCmpEQ)                                                                    \
  X(UCmpNE)                                                                    \
  X(UCmpLT)                                                                    \
  X(UCmpLE)                                                                    \
  X(UCmpGT)                                                                    \
  X(UCmpGE)                                                                    \
  X(FCmpEQ)                                                                    \
  X(FCmpNE)                                                                    \
  X(FCmpLT)                                                                    \
  X(FCmpLE)                                                                    \
  X(FCmpGT)                                                                    \
  X(FCmpGE)                                                                    \
  X(SIToFP)                                                                    \
  X(FPToSI)                                                                    \
  X(ZExt)                                                                      \
  X(Bitcast)                                                                   \
  X(Alloca)                                                                    \
  X(Load)                                                                      \
  X(LoadI1)                                                                    \
  X(Store)                                                                     \
  X(Gep)                                                                       \
  X(Select)                                                                    \
  X(SelectI1)                                                                  \
  X(Check)                                                                     \
  X(Stage)                                                                     \
  X(PhiCommit)                                                                 \
  X(Br)                                                                        \
  X(CondBr)                                                                    \
  X(Goto)                                                                      \
  X(Call)                                                                      \
  X(Ret)                                                                       \
  X(RetVoid)                                                                   \
  X(ISqrt)                                                                     \
  X(IFabs)                                                                     \
  X(ISin)                                                                      \
  X(ICos)                                                                      \
  X(IExp)                                                                      \
  X(ILog)                                                                      \
  X(IPow)                                                                      \
  X(IFloor)                                                                    \
  X(IFMin)                                                                     \
  X(IFMax)                                                                     \
  X(IIMin)                                                                     \
  X(IIMax)                                                                     \
  X(IMalloc)                                                                   \
  X(IFree)                                                                     \
  X(IRandSeed)                                                                 \
  X(IRandI64)                                                                  \
  X(IRandF64)                                                                  \
  X(IMpiRank)                                                                  \
  X(IMpiSize)                                                                  \
  X(IMpiBarrier)                                                               \
  X(IMpiIdentity)                                                              \
  X(IMpiCopy)

enum class VmOp : uint8_t {
#define IPAS_VM_OP_ENUM(N) N,
  IPAS_VM_OPS(IPAS_VM_OP_ENUM)
#undef IPAS_VM_OP_ENUM
};

constexpr unsigned kNumVmOps = 0
#define IPAS_VM_OP_COUNT(N) +1
    IPAS_VM_OPS(IPAS_VM_OP_COUNT)
#undef IPAS_VM_OP_COUNT
    ;

const char *vmOpName(VmOp Op);

/// Register index meaning "no register" (void call results).
constexpr uint16_t kNoReg = 0xffff;

/// One decoded instruction. A is the destination register for
/// value-producing ops; B/C/D are operand registers; X/Y are absolute
/// code offsets (branches), table indices (PhiCommit, Call, Alloca) or
/// unused. Id is the source instruction id — the fault-attribution key
/// recorded in `.iprec` streams.
struct VmInst {
  VmOp Op;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  uint16_t D = 0;
  uint32_t Id = 0;
  int32_t X = 0;
  int32_t Y = 0;
};

/// Per-phi commit descriptor: copy Stage into Dest as one interpreter
/// value step, flipping bits at Width when the fault plan hits.
struct VmPhiMeta {
  uint16_t Dest = 0;
  uint16_t Stage = 0;
  uint8_t Width = 64;
  uint32_t Id = 0;
};

struct VmFunction {
  std::string Name;
  uint32_t CodeStart = 0;
  uint32_t CodeEnd = 0;
  uint16_t NumArgs = 0;
  /// First phi staging register (== interp ModuleLayout frameSlots).
  uint16_t FirstStage = 0;
  /// Frame slots (== interp ModuleLayout frameSlots) plus staging regs.
  uint16_t NumRegs = 0;
  /// Constants occupy regs [ConstBase, ConstBase + ConstPool.size()).
  uint16_t ConstBase = 0;
  /// 0 = void, 1 = i1, 64 otherwise; flip width of the call-result
  /// commit in the caller.
  uint8_t RetWidth = 0;
  std::vector<uint64_t> ConstPool;

  uint32_t regsTotal() const {
    return static_cast<uint32_t>(ConstBase) +
           static_cast<uint32_t>(ConstPool.size());
  }
};

struct VmProgram {
  std::vector<VmInst> Code;
  std::vector<VmFunction> Functions;
  std::vector<VmPhiMeta> PhiMetas;
  /// Call argument source registers (caller frame), Call.Y indexes here.
  std::vector<uint16_t> ArgRegs;
  /// 64-bit immediates (alloca slot counts), Inst.X indexes here.
  std::vector<uint64_t> Aux64;
  std::map<std::string, uint32_t> FunctionIndex;

  /// Function index by name; UINT32_MAX when absent.
  uint32_t indexOf(const std::string &Name) const {
    auto It = FunctionIndex.find(Name);
    return It == FunctionIndex.end() ? UINT32_MAX : It->second;
  }
};

/// Compiles \p Layout's module to bytecode. Returns null (and sets
/// \p Err) when the module uses a construct the VM contract does not
/// cover; callers must then fall back to the tree-walking interpreter.
std::unique_ptr<VmProgram> compile(const ModuleLayout &Layout,
                                   std::string *Err = nullptr);

/// Textual listing of one function (or the whole program when \p FnName
/// is empty) for the bytecode golden tests. Branch targets render as
/// absolute code offsets; a branch to the next offset is annotated
/// "; fallthrough".
std::string disassemble(const VmProgram &P, const std::string &FnName = "");

/// Seeds a deliberate miscompile (swaps the operands of the first
/// subtraction) so the backend-differential oracle's selftest can prove
/// it catches real VM bugs. Returns false when the program contains no
/// suitable instruction.
bool injectSelftestBug(VmProgram &P);

} // namespace vm
} // namespace ipas

#endif // IPAS_VM_BYTECODE_H
