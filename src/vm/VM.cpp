//===- vm/VM.cpp ---------------------------------------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
// The dispatch loop below is written once and compiled in one of two
// modes: direct-threaded (computed goto, GNU extension) or a portable
// switch. Both share the handler bodies via the VM_CASE/VM_NEXT macros.
// Semantics notes live next to each handler; the reference is
// interp/Interpreter.cpp, which this file must track bit for bit.
//
//===----------------------------------------------------------------------===//

#include "vm/VM.h"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>

using namespace ipas;
using namespace ipas::vm;

#if defined(__GNUC__) && !defined(IPAS_VM_FORCE_SWITCH)
#define IPAS_VM_COMPUTED_GOTO 1
#endif

namespace {

inline double toD(uint64_t B) { return std::bit_cast<double>(B); }
inline uint64_t toU(double D) { return std::bit_cast<uint64_t>(D); }

/// RtValue::flipBit on raw bits: flip (Index % Width), mask to Width.
inline uint64_t flipBits(uint64_t Bits, unsigned Index, unsigned Width) {
  Bits ^= 1ull << (Index % Width);
  if (Width < 64)
    Bits &= (1ull << Width) - 1;
  return Bits;
}

} // namespace

VmContext::VmContext(const VmProgram &Prog, const Config &C)
    : P(Prog), Cfg(C), Arena(C.Mem), WorkloadRng(C.WorkloadRngSeed) {
  RegStack.resize(4096);
  Frames.reserve(64);
}

// Budget check + step accounting of ExecutionContext::run/stepOnce: the
// budget is tested *before* the instruction executes, then the step is
// counted unconditionally (trapping instructions count their step too).
#define VM_STEP()                                                              \
  do {                                                                         \
    if (Steps >= MaxSteps)                                                     \
      goto out_of_steps;                                                       \
    ++Steps;                                                                   \
  } while (0)

// writeResult(): flip at the targeted value step, count the value step,
// commit to the destination register.
#define VM_COMMIT(Width, ValBits)                                              \
  do {                                                                         \
    uint64_t CommitV = (ValBits);                                              \
    if (VS == FaultTarget) {                                                   \
      CommitV = flipBits(CommitV, BitIndex, (Width));                          \
      FaultInjected = true;                                                    \
      FaultedId = In->Id;                                                      \
    }                                                                          \
    ++VS;                                                                      \
    R[In->A] = CommitV;                                                        \
  } while (0)

#define VM_TRAP(K)                                                             \
  do {                                                                         \
    TrapOut = TrapKind::K;                                                     \
    goto trapped;                                                              \
  } while (0)

#ifdef IPAS_VM_COMPUTED_GOTO
#define VM_CASE(N) Lbl_##N:
#define VM_NEXT()                                                              \
  do {                                                                         \
    In = &Code[PC];                                                            \
    goto *Dispatch[static_cast<unsigned>(In->Op)];                             \
  } while (0)
#else
#define VM_CASE(N) case VmOp::N:
#define VM_NEXT() goto dispatch
#endif

VmContext::Result VmContext::run(uint32_t FnIndex,
                                 const std::vector<RtValue> &Args,
                                 const FaultPlan *Plan, uint64_t MaxSteps) {
  Result Res;
  Arena.reset();
  WorkloadRng.reseed(Cfg.WorkloadRngSeed);
  Frames.clear();

  assert(FnIndex < P.Functions.size() && "bad entry function index");
  const VmFunction &Entry = P.Functions[FnIndex];
  assert(Entry.NumArgs == Args.size() && "entry argument count mismatch");
  if (RegStack.size() < Entry.regsTotal())
    RegStack.resize(Entry.regsTotal());
  // Register files are not cleared between runs: the IR verifier
  // guarantees defs dominate uses (faults flip values, never the CFG
  // edges control follows), phi reads go through staging registers the
  // edge just wrote, and arguments/constants are rewritten here.
  for (size_t K = 0; K != Args.size(); ++K)
    RegStack[K] = Args[K].Bits;
  std::copy(Entry.ConstPool.begin(), Entry.ConstPool.end(),
            RegStack.begin() + Entry.ConstBase);
  {
    VmFrame F;
    F.Fn = &Entry;
    F.SavedStackPtr = Arena.stackPointer();
    Frames.push_back(F);
  }

  uint64_t Steps = 0;
  uint64_t VS = 0;
  const uint64_t FaultTarget = Plan ? Plan->TargetValueStep : UINT64_MAX;
  const unsigned BitIndex =
      Plan ? static_cast<unsigned>(Plan->BitDraw) : 0u;
  bool FaultInjected = false;
  uint32_t FaultedId = 0;
  TrapKind TrapOut = TrapKind::None;
  uint64_t RetBits = 0;

  const VmInst *Code = P.Code.data();
  const VmInst *In = nullptr;
  uint64_t *R = RegStack.data();
  uint32_t PC = Entry.CodeStart;

#ifdef IPAS_VM_COMPUTED_GOTO
  static const void *const Dispatch[kNumVmOps] = {
#define IPAS_VM_OP_LABEL(N) &&Lbl_##N,
      IPAS_VM_OPS(IPAS_VM_OP_LABEL)
#undef IPAS_VM_OP_LABEL
  };
  VM_NEXT();
#else
dispatch:
  In = &Code[PC];
  switch (In->Op) {
#endif

  VM_CASE(BinAdd) {
    VM_STEP();
    VM_COMMIT(64, R[In->B] + R[In->C]);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(BinSub) {
    VM_STEP();
    VM_COMMIT(64, R[In->B] - R[In->C]);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(BinMul) {
    VM_STEP();
    VM_COMMIT(64, R[In->B] * R[In->C]);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(BinAnd) {
    VM_STEP();
    VM_COMMIT(64, R[In->B] & R[In->C]);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(BinOr) {
    VM_STEP();
    VM_COMMIT(64, R[In->B] | R[In->C]);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(BinXor) {
    VM_STEP();
    VM_COMMIT(64, R[In->B] ^ R[In->C]);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(BinShl) {
    VM_STEP();
    VM_COMMIT(64, R[In->B] << (R[In->C] & 63));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(BinAShr) {
    VM_STEP();
    VM_COMMIT(64, static_cast<uint64_t>(static_cast<int64_t>(R[In->B]) >>
                                        (R[In->C] & 63)));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(BinI1) {
    VM_STEP();
    {
      uint64_t A = R[In->B], B = R[In->C], V = 0;
      switch (In->D) {
      case 0: V = A + B; break;
      case 1: V = A - B; break;
      case 2: V = A * B; break;
      case 3: V = A & B; break;
      case 4: V = A | B; break;
      case 5: V = A ^ B; break;
      case 6: V = A << (B & 63); break;
      default:
        V = static_cast<uint64_t>(static_cast<int64_t>(A) >> (B & 63));
        break;
      }
      VM_COMMIT(1, V & 1);
    }
    ++PC;
    VM_NEXT();
  }
  VM_CASE(SDiv) {
    VM_STEP();
    {
      int64_t A = static_cast<int64_t>(R[In->B]);
      int64_t B = static_cast<int64_t>(R[In->C]);
      // Division by zero and INT64_MIN / -1 raise SIGFPE on x86.
      if (B == 0 || (A == INT64_MIN && B == -1))
        VM_TRAP(DivByZero);
      VM_COMMIT(64, static_cast<uint64_t>(A / B));
    }
    ++PC;
    VM_NEXT();
  }
  VM_CASE(SRem) {
    VM_STEP();
    {
      int64_t A = static_cast<int64_t>(R[In->B]);
      int64_t B = static_cast<int64_t>(R[In->C]);
      if (B == 0 || (A == INT64_MIN && B == -1))
        VM_TRAP(DivByZero);
      VM_COMMIT(64, static_cast<uint64_t>(A % B));
    }
    ++PC;
    VM_NEXT();
  }
  VM_CASE(FAdd) {
    VM_STEP();
    VM_COMMIT(64, toU(toD(R[In->B]) + toD(R[In->C])));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(FSub) {
    VM_STEP();
    VM_COMMIT(64, toU(toD(R[In->B]) - toD(R[In->C])));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(FMul) {
    VM_STEP();
    VM_COMMIT(64, toU(toD(R[In->B]) * toD(R[In->C])));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(FDiv) {
    VM_STEP();
    VM_COMMIT(64, toU(toD(R[In->B]) / toD(R[In->C]))); // IEEE: never traps
    ++PC;
    VM_NEXT();
  }
  VM_CASE(ICmpEQ) {
    VM_STEP();
    VM_COMMIT(1, static_cast<int64_t>(R[In->B]) ==
                         static_cast<int64_t>(R[In->C])
                     ? 1u
                     : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(ICmpNE) {
    VM_STEP();
    VM_COMMIT(1, static_cast<int64_t>(R[In->B]) !=
                         static_cast<int64_t>(R[In->C])
                     ? 1u
                     : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(ICmpLT) {
    VM_STEP();
    VM_COMMIT(1, static_cast<int64_t>(R[In->B]) <
                         static_cast<int64_t>(R[In->C])
                     ? 1u
                     : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(ICmpLE) {
    VM_STEP();
    VM_COMMIT(1, static_cast<int64_t>(R[In->B]) <=
                         static_cast<int64_t>(R[In->C])
                     ? 1u
                     : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(ICmpGT) {
    VM_STEP();
    VM_COMMIT(1, static_cast<int64_t>(R[In->B]) >
                         static_cast<int64_t>(R[In->C])
                     ? 1u
                     : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(ICmpGE) {
    VM_STEP();
    VM_COMMIT(1, static_cast<int64_t>(R[In->B]) >=
                         static_cast<int64_t>(R[In->C])
                     ? 1u
                     : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(UCmpEQ) {
    VM_STEP();
    VM_COMMIT(1, R[In->B] == R[In->C] ? 1u : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(UCmpNE) {
    VM_STEP();
    VM_COMMIT(1, R[In->B] != R[In->C] ? 1u : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(UCmpLT) {
    VM_STEP();
    VM_COMMIT(1, R[In->B] < R[In->C] ? 1u : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(UCmpLE) {
    VM_STEP();
    VM_COMMIT(1, R[In->B] <= R[In->C] ? 1u : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(UCmpGT) {
    VM_STEP();
    VM_COMMIT(1, R[In->B] > R[In->C] ? 1u : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(UCmpGE) {
    VM_STEP();
    VM_COMMIT(1, R[In->B] >= R[In->C] ? 1u : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(FCmpEQ) {
    VM_STEP();
    VM_COMMIT(1, toD(R[In->B]) == toD(R[In->C]) ? 1u : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(FCmpNE) {
    VM_STEP();
    VM_COMMIT(1, toD(R[In->B]) != toD(R[In->C]) ? 1u : 0u); // true on NaN
    ++PC;
    VM_NEXT();
  }
  VM_CASE(FCmpLT) {
    VM_STEP();
    VM_COMMIT(1, toD(R[In->B]) < toD(R[In->C]) ? 1u : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(FCmpLE) {
    VM_STEP();
    VM_COMMIT(1, toD(R[In->B]) <= toD(R[In->C]) ? 1u : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(FCmpGT) {
    VM_STEP();
    VM_COMMIT(1, toD(R[In->B]) > toD(R[In->C]) ? 1u : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(FCmpGE) {
    VM_STEP();
    VM_COMMIT(1, toD(R[In->B]) >= toD(R[In->C]) ? 1u : 0u);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(SIToFP) {
    VM_STEP();
    VM_COMMIT(64,
              toU(static_cast<double>(static_cast<int64_t>(R[In->B]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(FPToSI) {
    VM_STEP();
    {
      double V = toD(R[In->B]);
      // Out-of-range conversions produce the x86 "integer indefinite".
      int64_t Rv;
      if (std::isnan(V) || V >= 9.2233720368547758e18 ||
          V <= -9.2233720368547758e18)
        Rv = INT64_MIN;
      else
        Rv = static_cast<int64_t>(V);
      VM_COMMIT(64, static_cast<uint64_t>(Rv));
    }
    ++PC;
    VM_NEXT();
  }
  VM_CASE(ZExt) {
    VM_STEP();
    VM_COMMIT(64, R[In->B] & 1);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(Bitcast) {
    VM_STEP();
    VM_COMMIT(64, R[In->B]);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(Alloca) {
    VM_STEP();
    {
      uint64_t Addr = Arena.allocaBytes(P.Aux64[In->X] * 8);
      if (!Addr)
        VM_TRAP(StackOverflow);
      VM_COMMIT(64, Addr);
    }
    ++PC;
    VM_NEXT();
  }
  VM_CASE(Load) {
    VM_STEP();
    {
      uint64_t Addr = R[In->B];
      if (!Arena.validRange(Addr, 8))
        VM_TRAP(OutOfBounds);
      VM_COMMIT(64, Arena.read64(Addr));
    }
    ++PC;
    VM_NEXT();
  }
  VM_CASE(LoadI1) {
    VM_STEP();
    {
      uint64_t Addr = R[In->B];
      if (!Arena.validRange(Addr, 8))
        VM_TRAP(OutOfBounds);
      VM_COMMIT(1, Arena.read64(Addr) & 1);
    }
    ++PC;
    VM_NEXT();
  }
  VM_CASE(Store) {
    VM_STEP();
    {
      uint64_t Addr = R[In->C];
      if (!Arena.validRange(Addr, 8))
        VM_TRAP(OutOfBounds);
      Arena.write64(Addr, R[In->B]);
    }
    ++PC;
    VM_NEXT();
  }
  VM_CASE(Gep) {
    VM_STEP();
    VM_COMMIT(64, R[In->B] + R[In->C] * 8);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(Select) {
    VM_STEP();
    VM_COMMIT(64, (R[In->B] & 1) ? R[In->C] : R[In->D]);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(SelectI1) {
    VM_STEP();
    VM_COMMIT(1, (R[In->B] & 1) ? R[In->C] : R[In->D]);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(Check) {
    VM_STEP();
    if (R[In->B] != R[In->C])
      goto detected;
    ++PC;
    VM_NEXT();
  }
  VM_CASE(Stage) {
    // Pre-resolved phi move on an edge: pure data movement into a
    // staging register, no step, no budget interaction (the interpreter
    // reads all incoming values inside the phi group's step).
    R[In->A] = R[In->B];
    ++PC;
    VM_NEXT();
  }
  VM_CASE(PhiCommit) {
    // execPhis: one budget check for the whole group (it commits
    // atomically and may overshoot the budget), then one step + one
    // value step per phi in block order.
    if (Steps >= MaxSteps)
      goto out_of_steps;
    {
      const VmPhiMeta *M = &P.PhiMetas[In->X];
      for (unsigned K = 0; K != In->A; ++K, ++M) {
        ++Steps;
        uint64_t V = R[M->Stage];
        if (VS == FaultTarget) {
          V = flipBits(V, BitIndex, M->Width);
          FaultInjected = true;
          FaultedId = M->Id;
        }
        ++VS;
        R[M->Dest] = V;
      }
    }
    ++PC;
    VM_NEXT();
  }
  VM_CASE(Br) {
    VM_STEP();
    PC = static_cast<uint32_t>(In->X);
    VM_NEXT();
  }
  VM_CASE(CondBr) {
    VM_STEP();
    PC = static_cast<uint32_t>((R[In->B] & 1) ? In->X : In->Y);
    VM_NEXT();
  }
  VM_CASE(Goto) {
    // Trampoline exit: control transfer only (the CondBr already
    // accounted the step).
    PC = static_cast<uint32_t>(In->X);
    VM_NEXT();
  }
  VM_CASE(Call) {
    // execCall: depth check before the step is counted, then one step,
    // argument evaluation, frame push.
    if (Steps >= MaxSteps)
      goto out_of_steps;
    if (Frames.size() >= Cfg.MaxCallDepth)
      VM_TRAP(CallDepthExceeded);
    ++Steps;
    {
      const VmFunction &Callee = P.Functions[In->X];
      uint32_t CallerBase = Frames.back().RegBase;
      uint32_t NewBase = CallerBase + Frames.back().Fn->regsTotal();
      if (RegStack.size() < static_cast<size_t>(NewBase) + Callee.regsTotal())
        RegStack.resize(
            std::max(RegStack.size() * 2,
                     static_cast<size_t>(NewBase) + Callee.regsTotal()));
      const uint16_t *Srcs = P.ArgRegs.data() + In->Y;
      uint64_t *CallerRegs = RegStack.data() + CallerBase;
      uint64_t *CalleeRegs = RegStack.data() + NewBase;
      for (unsigned K = 0; K != In->B; ++K)
        CalleeRegs[K] = CallerRegs[Srcs[K]];
      std::copy(Callee.ConstPool.begin(), Callee.ConstPool.end(),
                CalleeRegs + Callee.ConstBase);
      VmFrame NF;
      NF.Fn = &Callee;
      NF.RegBase = NewBase;
      NF.RetPC = PC + 1;
      NF.CallId = In->Id;
      NF.RetReg = In->A;
      NF.RetWidth = Callee.RetWidth;
      NF.SavedStackPtr = Arena.stackPointer();
      Frames.push_back(NF);
      R = CalleeRegs;
      PC = Callee.CodeStart;
    }
    VM_NEXT();
  }
  VM_CASE(Ret) {
    VM_STEP();
    {
      uint64_t V = R[In->B];
      VmFrame Done = Frames.back();
      Frames.pop_back();
      Arena.restoreStackPointer(Done.SavedStackPtr);
      if (Frames.empty()) {
        RetBits = V;
        goto finished;
      }
      R = RegStack.data() + Frames.back().RegBase;
      PC = Done.RetPC;
      // returnFromFrame: the call result is a value step attributed to
      // the *call* instruction, flipping at the callee's return width.
      if (Done.RetReg != kNoReg) {
        if (VS == FaultTarget) {
          V = flipBits(V, BitIndex, Done.RetWidth);
          FaultInjected = true;
          FaultedId = Done.CallId;
        }
        ++VS;
        R[Done.RetReg] = V;
      }
    }
    VM_NEXT();
  }
  VM_CASE(RetVoid) {
    VM_STEP();
    {
      VmFrame Done = Frames.back();
      Frames.pop_back();
      Arena.restoreStackPointer(Done.SavedStackPtr);
      if (Frames.empty()) {
        RetBits = 0;
        goto finished;
      }
      R = RegStack.data() + Frames.back().RegBase;
      PC = Done.RetPC;
    }
    VM_NEXT();
  }
  VM_CASE(ISqrt) {
    VM_STEP();
    VM_COMMIT(64, toU(std::sqrt(toD(R[In->B]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IFabs) {
    VM_STEP();
    VM_COMMIT(64, toU(std::fabs(toD(R[In->B]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(ISin) {
    VM_STEP();
    VM_COMMIT(64, toU(std::sin(toD(R[In->B]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(ICos) {
    VM_STEP();
    VM_COMMIT(64, toU(std::cos(toD(R[In->B]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IExp) {
    VM_STEP();
    VM_COMMIT(64, toU(std::exp(toD(R[In->B]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(ILog) {
    VM_STEP();
    VM_COMMIT(64, toU(std::log(toD(R[In->B]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IPow) {
    VM_STEP();
    VM_COMMIT(64, toU(std::pow(toD(R[In->B]), toD(R[In->C]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IFloor) {
    VM_STEP();
    VM_COMMIT(64, toU(std::floor(toD(R[In->B]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IFMin) {
    VM_STEP();
    VM_COMMIT(64, toU(std::fmin(toD(R[In->B]), toD(R[In->C]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IFMax) {
    VM_STEP();
    VM_COMMIT(64, toU(std::fmax(toD(R[In->B]), toD(R[In->C]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IIMin) {
    VM_STEP();
    VM_COMMIT(64, static_cast<uint64_t>(
                      std::min(static_cast<int64_t>(R[In->B]),
                               static_cast<int64_t>(R[In->C]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IIMax) {
    VM_STEP();
    VM_COMMIT(64, static_cast<uint64_t>(
                      std::max(static_cast<int64_t>(R[In->B]),
                               static_cast<int64_t>(R[In->C]))));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IMalloc) {
    VM_STEP();
    {
      int64_t Slots = static_cast<int64_t>(R[In->B]);
      if (Slots < 0)
        VM_TRAP(OutOfMemory);
      uint64_t Addr = Arena.mallocBytes(static_cast<uint64_t>(Slots) * 8);
      if (!Addr)
        VM_TRAP(OutOfMemory);
      VM_COMMIT(64, Addr);
    }
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IFree) {
    VM_STEP(); // bump allocator: no recycling, the step still counts
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IRandSeed) {
    VM_STEP();
    WorkloadRng.reseed(R[In->B]);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IRandI64) {
    VM_STEP();
    {
      int64_t Bound = static_cast<int64_t>(R[In->B]);
      VM_COMMIT(64, Bound <= 0 ? 0
                               : WorkloadRng.nextBelow(
                                     static_cast<uint64_t>(Bound)));
    }
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IRandF64) {
    VM_STEP();
    VM_COMMIT(64, toU(WorkloadRng.nextDouble()));
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IMpiRank) {
    VM_STEP();
    VM_COMMIT(64, 0); // single-rank semantics, like execMpiSingleRank
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IMpiSize) {
    VM_STEP();
    VM_COMMIT(64, 1);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IMpiBarrier) {
    VM_STEP();
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IMpiIdentity) {
    VM_STEP();
    VM_COMMIT(64, R[In->B]);
    ++PC;
    VM_NEXT();
  }
  VM_CASE(IMpiCopy) {
    VM_STEP();
    {
      uint64_t Send = R[In->B];
      uint64_t Recv = R[In->C];
      int64_t N = static_cast<int64_t>(R[In->D]);
      if (N < 0)
        VM_TRAP(OutOfBounds);
      uint64_t Count = static_cast<uint64_t>(N);
      if (!Arena.validRange(Send, Count * 8) ||
          !Arena.validRange(Recv, Count * 8))
        VM_TRAP(OutOfBounds);
      // Forward slot-by-slot copy, exactly like copySlots (overlap
      // behaves like the interpreter, not like memcpy).
      for (uint64_t K = 0; K != Count; ++K)
        Arena.write64(Recv + K * 8, Arena.read64(Send + K * 8));
    }
    ++PC;
    VM_NEXT();
  }

#ifndef IPAS_VM_COMPUTED_GOTO
  } // switch
  assert(false && "unhandled VM opcode");
  goto dispatch;
#endif

out_of_steps:
  Res.Status = RunStatus::OutOfSteps;
  goto done;
trapped:
  Res.Status = RunStatus::Trapped;
  Res.Trap = TrapOut;
  goto done;
detected:
  Res.Status = RunStatus::Detected;
  goto done;
finished:
  Res.Status = RunStatus::Finished;
  Res.ReturnValue.Bits = RetBits;
done:
  Res.Steps = Steps;
  Res.ValueSteps = VS;
  Res.FaultInjected = FaultInjected;
  Res.FaultedInstructionId = FaultedId;
  return Res;
}
