//===- bench/ablation_design_choices.cpp - DESIGN.md ablations -------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Three ablations of the design decisions called out in DESIGN.md:
///
///  A. Forward-slice memory extension (features 25-31): def-use-only
///     slices vs slices that flow through stores to aliasing loads.
///  B. Model selection metric: the paper's F-score (Eq. 1) vs plain
///     accuracy — plain accuracy collapses to the majority class under
///     SOC-style imbalance.
///  C. Check placement: one check per duplication path (paper §4.4) vs a
///     SWIFT-style check after every duplicated instruction.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "analysis/Features.h"
#include "transform/Duplication.h"

using namespace ipas;
using namespace ipas::bench;

/// Ablation A: feature quality with and without the slice memory
/// extension, measured as the best cross-validated F-score reachable on
/// the same labels.
static void ablateSliceMemory(const Workload &W, const BenchOptions &Opts,
                              BenchReport &Report) {
  // One campaign, two feature extractions.
  auto M = compileWorkload(W);
  ModuleLayout Layout(*M);
  WorkloadHarness Harness(W, 1);
  CampaignConfig CC;
  CC.NumRuns = Opts.Cfg.TrainSamples;
  CC.Seed = Opts.Cfg.Seed ^ 0xAB1;
  CampaignResult Campaign = runCampaign(Harness, Layout, CC);

  GridSearchConfig GC = Opts.Cfg.Grid;
  GC.CSteps = std::min(GC.CSteps, 5u);
  GC.GammaSteps = std::min(GC.GammaSteps, 5u);

  double Scores[2];
  for (int Mem = 0; Mem != 2; ++Mem) {
    SliceOptions SO;
    SO.ThroughMemory = Mem == 1;
    FeatureExtractor FE(SO);
    auto Features = FE.extractModule(*M);
    std::vector<std::vector<double>> Raw;
    for (const FeatureVector &FV : Features)
      Raw.emplace_back(FV.begin(), FV.end());
    FeatureScaler Scaler;
    Scaler.fit(Raw);
    Dataset D;
    for (const InjectionRecord &Rec : Campaign.Records)
      D.add(Scaler.transform(Raw[Rec.InstructionId]),
            Rec.Result == Outcome::SOC ? 1 : -1);
    std::vector<RankedConfig> Ranked = gridSearch(D, GC);
    Scores[Mem] = Ranked.empty() ? 0.0 : Ranked.front().FScore;
  }
  std::printf("  %-10s def-use-only F=%.3f   through-memory F=%.3f\n",
              W.name().c_str(), Scores[0], Scores[1]);
  Report.metric(W.name() + ".fscore_defuse_only", Scores[0]);
  Report.metric(W.name() + ".fscore_through_memory", Scores[1]);
}

/// Ablation B: rank the same grid by F-score vs by plain accuracy and
/// report the per-class accuracies of each winner.
static void ablateSelectionMetric(const Workload &W,
                                  const BenchOptions &Opts,
                                  BenchReport &Report) {
  IpasPipeline Pipeline(W, Opts.Cfg);
  TrainingArtifacts A = Pipeline.collectAndTrain(/*RunGridSearch=*/false);
  GridSearchConfig GC = Opts.Cfg.Grid;
  GC.CSteps = std::min(GC.CSteps, 5u);
  GC.GammaSteps = std::min(GC.GammaSteps, 5u);
  std::vector<RankedConfig> Ranked = gridSearch(A.IpasData, GC);
  if (Ranked.empty())
    return;
  const RankedConfig &ByFScore = Ranked.front();

  double NegFrac = static_cast<double>(A.IpasData.countLabel(-1)) /
                   static_cast<double>(A.IpasData.size());
  const RankedConfig *ByAccuracy = &Ranked.front();
  double BestAcc = -1.0;
  for (const RankedConfig &RC : Ranked) {
    double PosFrac = 1.0 - NegFrac;
    double Acc = PosFrac * RC.Accuracies.Accuracy1 +
                 NegFrac * RC.Accuracies.Accuracy2;
    if (Acc > BestAcc) {
      BestAcc = Acc;
      ByAccuracy = &RC;
    }
  }
  std::printf("  %-10s by F-score: acc1=%.2f acc2=%.2f (F=%.3f) | by "
              "accuracy: acc1=%.2f acc2=%.2f (acc=%.3f)\n",
              W.name().c_str(), ByFScore.Accuracies.Accuracy1,
              ByFScore.Accuracies.Accuracy2, ByFScore.FScore,
              ByAccuracy->Accuracies.Accuracy1,
              ByAccuracy->Accuracies.Accuracy2, BestAcc);
  Report.metric(W.name() + ".soc_acc_by_fscore",
                ByFScore.Accuracies.Accuracy1);
  Report.metric(W.name() + ".soc_acc_by_accuracy",
                ByAccuracy->Accuracies.Accuracy1);
}

/// Ablation C: path-end checks vs per-instruction checks under full
/// duplication.
static void ablateCheckPlacement(const Workload &W,
                                 const BenchOptions &Opts,
                                 BenchReport &Report) {
  IpasPipeline Pipeline(W, Opts.Cfg);
  auto Unprot = Pipeline.protectNone();
  CampaignResult Base = Pipeline.evaluate(Unprot, Opts.Cfg.Seed ^ 0xC0);
  double BaseSoc = Base.fraction(Outcome::SOC);

  for (CheckPlacement Placement :
       {CheckPlacement::PathEnds, CheckPlacement::EveryInstruction}) {
    auto M = compileWorkload(W);
    DuplicationOptions DO;
    DO.Placement = Placement;
    DuplicationStats Stats = duplicateInstructions(
        *M, [](const Instruction &) { return true; }, DO);
    M->renumber();
    ModuleLayout Layout(*M);
    WorkloadHarness Harness(W, 1);
    CampaignConfig CC;
    CC.NumRuns = Opts.Cfg.EvalRuns;
    CC.Seed = Opts.Cfg.Seed ^ 0xC1;
    CampaignResult R = runCampaign(Harness, Layout, CC);
    double Slowdown = static_cast<double>(R.CleanSteps) /
                      static_cast<double>(Base.CleanSteps);
    double Red = BaseSoc > 0
                     ? 100.0 * (BaseSoc - R.fraction(Outcome::SOC)) /
                           BaseSoc
                     : 0.0;
    std::printf("  %-10s %-17s checks=%5zu slowdown=%.3f "
                "soc-reduction=%5.1f%% detected=%4.1f%%\n",
                W.name().c_str(),
                Placement == CheckPlacement::PathEnds ? "path-ends"
                                                      : "per-instruction",
                Stats.ChecksInserted, Slowdown, Red,
                100.0 * R.fraction(Outcome::Detected));
    const char *Tag = Placement == CheckPlacement::PathEnds
                          ? ".path_ends"
                          : ".per_instruction";
    Report.metric(W.name() + Tag + "_checks", Stats.ChecksInserted);
    Report.metric(W.name() + Tag + "_slowdown", Slowdown);
    Report.metric(W.name() + Tag + "_soc_reduction_pct", Red);
  }
}

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseOptions(
      Argc, Argv, "Ablations of the DESIGN.md design decisions");
  printHeader("Ablations: slices, selection metric, check placement",
              Opts);
  BenchReport Report("ablation_design_choices", Opts);
  auto Workloads = selectedWorkloads(Opts);

  std::printf("A. forward-slice memory extension (best CV F-score on SOC "
              "labels)\n");
  for (const auto &W : Workloads)
    ablateSliceMemory(*W, Opts, Report);

  std::printf("\nB. model-selection metric (Eq. 1 F-score vs plain "
              "accuracy)\n");
  for (const auto &W : Workloads)
    ablateSelectionMetric(*W, Opts, Report);

  std::printf("\nC. check placement under full duplication\n");
  for (const auto &W : Workloads)
    ablateCheckPlacement(*W, Opts, Report);

  std::printf("\n(Expected: memory-aware slices help or tie; accuracy-"
              "selected models sacrifice the\n minority SOC class; "
              "per-instruction checks cost extra instructions for "
              "similar coverage.)\n");
  return 0;
}
