//===- bench/micro_substrates.cpp - Substrate microbenchmarks -------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// google-benchmark microbenchmarks for the substrates the reproduction
/// is built on: the MiniC compiler, the analyses and transforms, the
/// interpreter, SimMPI, and the SVM. These bound the cost of the paper
/// harnesses and catch performance regressions in the hot paths.
///
//===----------------------------------------------------------------------===//

#include "analysis/Features.h"
#include "core/Pipeline.h"
#include "mpi/SimMpi.h"
#include "obs/Json.h"
#include "obs/Trace.h"
#include "transform/Duplication.h"
#include "transform/Mem2Reg.h"
#include "transform/SimplifyCFG.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

using namespace ipas;

namespace {

std::unique_ptr<Module> compileSnippet(const std::string &Src,
                                       bool RunMem2Reg = true) {
  Diagnostics D;
  auto M = compileMiniC(Src, "bench", D);
  assert(M && "benchmark snippet failed to compile");
  removeUnreachableBlocks(*M);
  if (RunMem2Reg)
    promoteAllocasToRegisters(*M);
  M->renumber();
  return M;
}

const char *ArithLoopSrc =
    "double f(int n) { double s = 0.0;\n"
    "  for (int i = 0; i < n; i = i + 1)\n"
    "    s = s + 1.0 / (1.0 + 1.0 * i * i);\n"
    "  return s; }";

} // namespace

static void BM_InterpreterArithmetic(benchmark::State &State) {
  auto M = compileSnippet(ArithLoopSrc);
  ModuleLayout Layout(*M);
  uint64_t Steps = 0;
  for (auto _ : State) {
    ExecutionContext Ctx(Layout);
    Ctx.start(M->getFunction("f"), {RtValue::fromI64(10000)});
    benchmark::DoNotOptimize(Ctx.run(UINT64_MAX));
    Steps += Ctx.steps();
  }
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterArithmetic);

static void BM_InterpreterMemoryTraffic(benchmark::State &State) {
  auto M = compileSnippet(
      "double f(int n) { double a[256]; double s = 0.0;\n"
      "  for (int i = 0; i < 256; i = i + 1) a[i] = 1.0 * i;\n"
      "  for (int k = 0; k < n; k = k + 1)\n"
      "    for (int i = 0; i < 256; i = i + 1) s = s + a[i];\n"
      "  return s; }");
  ModuleLayout Layout(*M);
  uint64_t Steps = 0;
  for (auto _ : State) {
    ExecutionContext Ctx(Layout);
    Ctx.start(M->getFunction("f"), {RtValue::fromI64(50)});
    benchmark::DoNotOptimize(Ctx.run(UINT64_MAX));
    Steps += Ctx.steps();
  }
  State.counters["steps/s"] = benchmark::Counter(
      static_cast<double>(Steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InterpreterMemoryTraffic);

static void BM_CompileWorkload(benchmark::State &State) {
  auto W = makeWorkload("AMG"); // the largest MiniC source
  for (auto _ : State) {
    auto M = compileWorkload(*W);
    benchmark::DoNotOptimize(M->numInstructions());
  }
}
BENCHMARK(BM_CompileWorkload);

static void BM_Mem2Reg(benchmark::State &State) {
  auto W = makeWorkload("AMG");
  for (auto _ : State) {
    State.PauseTiming();
    Diagnostics D;
    auto M = compileMiniC(W->source(), "bench", D);
    removeUnreachableBlocks(*M);
    State.ResumeTiming();
    benchmark::DoNotOptimize(promoteAllocasToRegisters(*M));
  }
}
BENCHMARK(BM_Mem2Reg);

static void BM_FeatureExtraction(benchmark::State &State) {
  auto W = makeWorkload("AMG");
  auto M = compileWorkload(*W);
  FeatureExtractor FE;
  for (auto _ : State)
    benchmark::DoNotOptimize(FE.extractModule(*M));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(M->numInstructions()));
}
BENCHMARK(BM_FeatureExtraction);

static void BM_DuplicationPass(benchmark::State &State) {
  auto W = makeWorkload("AMG");
  for (auto _ : State) {
    State.PauseTiming();
    auto M = compileWorkload(*W);
    State.ResumeTiming();
    benchmark::DoNotOptimize(duplicateAllInstructions(*M));
  }
}
BENCHMARK(BM_DuplicationPass);

static void BM_SvmTrain(benchmark::State &State) {
  Rng R(5);
  Dataset D;
  int N = static_cast<int>(State.range(0));
  for (int I = 0; I != N; ++I) {
    bool Pos = R.nextBool(0.1); // class imbalance, as in IPAS data
    double Cx = Pos ? 2.0 : 0.0;
    std::vector<double> X;
    for (int F = 0; F != 31; ++F)
      X.push_back(Cx + R.nextDoubleIn(-1.0, 1.0));
    D.add(std::move(X), Pos ? 1 : -1);
  }
  SvmParams P;
  P.C = 100.0;
  P.Gamma = 0.05;
  for (auto _ : State)
    benchmark::DoNotOptimize(trainCSvc(D, P));
}
BENCHMARK(BM_SvmTrain)->Arg(200)->Arg(500)->Arg(1000);

static void BM_SvmPredictModule(benchmark::State &State) {
  Rng R(6);
  Dataset D;
  for (int I = 0; I != 400; ++I) {
    bool Pos = R.nextBool(0.5);
    std::vector<double> X;
    for (int F = 0; F != 31; ++F)
      X.push_back((Pos ? 1.5 : 0.0) + R.nextDoubleIn(-1.0, 1.0));
    D.add(std::move(X), Pos ? 1 : -1);
  }
  SvmModel Model = trainCSvc(D, SvmParams());
  std::vector<double> Probe(31, 0.7);
  for (auto _ : State)
    benchmark::DoNotOptimize(Model.predict(Probe));
}
BENCHMARK(BM_SvmPredictModule);

static void BM_WorkloadCleanRun(benchmark::State &State) {
  auto W = makeWorkload("IS");
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  for (auto _ : State) {
    WorkloadHarness H(*W, 1);
    ExecutionRecord R = H.execute(Layout, nullptr, UINT64_MAX);
    benchmark::DoNotOptimize(R.Steps);
  }
}
BENCHMARK(BM_WorkloadCleanRun);

static void BM_MpiAllreduceRound(benchmark::State &State) {
  auto M = compileSnippet("int f(int n) { double s = 0.0;\n"
                          "  for (int i = 0; i < n; i = i + 1)\n"
                          "    s = s + mpi_allreduce_sum_d(1.0);\n"
                          "  return (int)s; }");
  ModuleLayout Layout(*M);
  int Ranks = static_cast<int>(State.range(0));
  for (auto _ : State) {
    MpiJob::Config Cfg;
    Cfg.NumRanks = Ranks;
    MpiJob Job(Layout, Cfg);
    Job.start(M->getFunction("f"), [](ExecutionContext &, int) {
      return std::vector<RtValue>{RtValue::fromI64(100)};
    });
    benchmark::DoNotOptimize(Job.run());
  }
}
BENCHMARK(BM_MpiAllreduceRound)->Arg(2)->Arg(8);

static void BM_FaultInjectedRun(benchmark::State &State) {
  auto W = makeWorkload("IS");
  auto M = compileWorkload(*W);
  ModuleLayout Layout(*M);
  WorkloadHarness H(*W, 1);
  // Golden capture once.
  H.execute(Layout, nullptr, UINT64_MAX);
  Rng R(7);
  for (auto _ : State) {
    FaultPlan Plan;
    Plan.TargetValueStep = R.nextBelow(200000);
    Plan.BitDraw = R.next();
    benchmark::DoNotOptimize(H.execute(Layout, &Plan, 5000000));
  }
}
BENCHMARK(BM_FaultInjectedRun);

namespace {

/// Normal console output, plus a capture of per-benchmark real time so
/// the run can be written out as BENCH_micro_substrates.json alongside
/// the other harnesses' reports.
class CapturingReporter : public benchmark::ConsoleReporter {
public:
  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs)
      if (R.run_type == Run::RT_Iteration && !R.error_occurred)
        RealNs[R.benchmark_name()] = R.GetAdjustedRealTime();
    ConsoleReporter::ReportRuns(Runs);
  }

  std::map<std::string, double> RealNs;
};

void writeReport(const CapturingReporter &Rep, double WallSeconds) {
  ipas::obs::JsonWriter W;
  W.beginObject();
  W.key("benchmark").value("micro_substrates");
  W.key("config").beginObject();
  W.key("time_unit").value("ns_per_iteration");
  W.endObject();
  W.key("metrics").beginObject();
  for (const auto &[Name, Ns] : Rep.RealNs)
    W.key(Name).value(Ns);
  W.endObject();
  W.key("wall_seconds").value(WallSeconds);
  W.endObject();

  std::string Dir;
  if (const char *D = std::getenv("IPAS_BENCH_DIR"))
    Dir = std::string(D) + "/";
  std::string Path = Dir + "BENCH_micro_substrates.json";
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
    return;
  }
  std::fputs(W.str().c_str(), F);
  std::fputc('\n', F);
  std::fclose(F);
}

} // namespace

int main(int argc, char **argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  uint64_t Start = ipas::obs::monotonicMicros();
  CapturingReporter Reporter;
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  writeReport(Reporter, static_cast<double>(
                            ipas::obs::monotonicMicros() - Start) /
                            1e6);
  benchmark::Shutdown();
  return 0;
}
