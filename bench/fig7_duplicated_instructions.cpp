//===- bench/fig7_duplicated_instructions.cpp - Paper Figure 7 ------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 7: average percentage of duplicated instructions
/// over the top-N configurations, IPAS vs Baseline (plus the full-
/// duplication ceiling). The paper's claim: IPAS protects fewer
/// instructions than the symptom-based baseline.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace ipas;
using namespace ipas::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseOptions(
      Argc, Argv, "Figure 7: average duplicated instructions");
  printHeader("Figure 7: % duplicated instructions (top-N average)", Opts);
  BenchReport Report("fig7_duplicated_instructions", Opts);

  std::printf("%-10s %12s %12s %12s\n", "workload", "ipas", "baseline",
              "full");
  for (const auto &W : selectedWorkloads(Opts)) {
    WorkloadEvaluation WE = evaluateWorkloadCached(*W, Opts.Cfg);
    double IpasSum = 0, BaseSum = 0, Full = 0;
    int IpasN = 0, BaseN = 0;
    for (const VariantEvaluation &V : WE.Variants) {
      if (V.Tech == Technique::Ipas) {
        IpasSum += V.Dup.duplicatedFraction();
        ++IpasN;
      } else if (V.Tech == Technique::Baseline) {
        BaseSum += V.Dup.duplicatedFraction();
        ++BaseN;
      } else if (V.Tech == Technique::FullDup) {
        Full = V.Dup.duplicatedFraction();
      }
    }
    std::printf("%-10s %11.1f%% %11.1f%% %11.1f%%\n",
                WE.WorkloadName.c_str(),
                IpasN ? 100.0 * IpasSum / IpasN : 0.0,
                BaseN ? 100.0 * BaseSum / BaseN : 0.0, 100.0 * Full);
    Report.metric(WE.WorkloadName + ".ipas_dup_pct",
                  IpasN ? 100.0 * IpasSum / IpasN : 0.0);
    Report.metric(WE.WorkloadName + ".baseline_dup_pct",
                  BaseN ? 100.0 * BaseSum / BaseN : 0.0);
  }
  std::printf("\n(Paper shape: IPAS duplicates fewer instructions than "
              "Baseline on every code.)\n");
  return 0;
}
