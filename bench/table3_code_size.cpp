//===- bench/table3_code_size.cpp - Paper Table 3 -----------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table 3: number of static IR instructions (after the
/// standard pass pipeline, i.e. what the protection pass sees) and lines
/// of code for each workload.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "frontend/Lexer.h"

using namespace ipas;
using namespace ipas::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseOptions(
      Argc, Argv, "Table 3: static instructions and lines of code");
  std::printf("== Table 3: number of static instructions and lines of "
              "code ==\n\n");
  BenchReport Report("table3_code_size", Opts);
  std::printf("%-22s", "");
  auto Workloads = selectedWorkloads(Opts);
  for (const auto &W : Workloads)
    std::printf("%10s", W->name().c_str());
  std::printf("\n%-22s", "Static instructions");
  for (const auto &W : Workloads) {
    auto M = compileWorkload(*W);
    std::printf("%10zu", M->numInstructions());
    Report.metric(W->name() + ".static_instructions", M->numInstructions());
  }
  std::printf("\n%-22s", "Lines of code");
  for (const auto &W : Workloads) {
    size_t Loc = Lexer::countCodeLines(W->source());
    std::printf("%10zu", Loc);
    Report.metric(W->name() + ".lines_of_code", Loc);
  }
  std::printf("\n\n(Paper, for reference: CoMD 12240/3036, HPCCG 5107/1313,"
              " AMG 4478/952,\n FFT 566/249, IS 1457/701 — the MiniC "
              "workloads are laptop-scale analogues.)\n");
  return 0;
}
