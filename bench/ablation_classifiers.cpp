//===- bench/ablation_classifiers.cpp - SVM vs tree vs kNN (§4.3.1) -------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reproduces the paper's classifier-selection experiment (§4.3.1): on
/// the real class-imbalanced SOC training data, compare the C-SVM against
/// decision trees and nearest neighbour by cross-validated F-score, and
/// quantify how much the per-class penalty weighting contributes.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "ml/Comparators.h"

using namespace ipas;
using namespace ipas::bench;

namespace {

/// Pooled per-class accuracies of an arbitrary predictor over stratified
/// folds (the SVM path reuses crossValidate()).
template <typename TrainFn>
ClassAccuracies crossValidateGeneric(const Dataset &D, unsigned Folds,
                                     Rng &R, TrainFn Train) {
  std::vector<size_t> Pos, Neg;
  for (size_t I = 0; I != D.size(); ++I)
    (D.Y[I] > 0 ? Pos : Neg).push_back(I);
  auto Shuffle = [&](std::vector<size_t> &V) {
    R.shuffle(V.size(), [&](size_t A, size_t B) { std::swap(V[A], V[B]); });
  };
  Shuffle(Pos);
  Shuffle(Neg);
  std::vector<unsigned> FoldOf(D.size());
  unsigned Next = 0;
  for (size_t I : Pos)
    FoldOf[I] = Next++ % Folds;
  for (size_t I : Neg)
    FoldOf[I] = Next++ % Folds;

  size_t C1 = 0, T1 = 0, C2 = 0, T2 = 0;
  for (unsigned Fold = 0; Fold != Folds; ++Fold) {
    Dataset Train_, Test;
    for (size_t I = 0; I != D.size(); ++I)
      (FoldOf[I] == Fold ? Test : Train_).add(D.X[I], D.Y[I]);
    if (Train_.countLabel(1) == 0 || Train_.countLabel(-1) == 0)
      continue;
    auto Predictor = Train(Train_);
    for (size_t I = 0; I != Test.size(); ++I) {
      int Pred = Predictor(Test.X[I]);
      if (Test.Y[I] > 0) {
        ++T1;
        C1 += Pred > 0;
      } else {
        ++T2;
        C2 += Pred < 0;
      }
    }
  }
  ClassAccuracies A;
  A.Accuracy1 = T1 ? double(C1) / double(T1) : 0.0;
  A.Accuracy2 = T2 ? double(C2) / double(T2) : 0.0;
  return A;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseOptions(
      Argc, Argv,
      "Ablation: SVM vs decision tree vs kNN on SOC training data");
  printHeader("Ablation: classifier choice (paper §4.3.1)", Opts);
  BenchReport Report("ablation_classifiers", Opts);

  std::printf("%-10s %8s | %18s %18s %14s %10s %10s\n", "workload",
              "SOC%", "svm (weighted)", "svm (unweighted)", "dtree(d8)",
              "knn-5", "knn-1");

  for (const auto &W : selectedWorkloads(Opts)) {
    IpasPipeline Pipeline(*W, Opts.Cfg);
    TrainingArtifacts A = Pipeline.collectAndTrain(/*RunGridSearch=*/true);
    const Dataset &D = A.IpasData;
    double SocFrac = static_cast<double>(D.countLabel(1)) /
                     static_cast<double>(D.size());

    // SVM: the best grid configuration, weighted and unweighted.
    SvmParams Best = A.IpasConfigs.front().Params;
    Rng R1(7);
    double SvmW = fScore(crossValidate(D, Best, 3, R1));
    SvmParams NoWeight = Best;
    NoWeight.AutoClassWeight = false;
    Rng R2(7);
    double SvmU = fScore(crossValidate(D, NoWeight, 3, R2));

    Rng R3(7);
    double Tree = fScore(crossValidateGeneric(
        D, 3, R3, [](const Dataset &Train) {
          auto TreePtr =
              std::make_shared<DecisionTree>(DecisionTree::train(Train));
          return [TreePtr](const std::vector<double> &X) {
            return TreePtr->predict(X);
          };
        }));
    Rng R4(7);
    double Knn5 = fScore(crossValidateGeneric(
        D, 3, R4, [](const Dataset &Train) {
          auto KnnPtr = std::make_shared<KnnClassifier>(Train, 5);
          return [KnnPtr](const std::vector<double> &X) {
            return KnnPtr->predict(X);
          };
        }));
    Rng R5(7);
    double Knn1 = fScore(crossValidateGeneric(
        D, 3, R5, [](const Dataset &Train) {
          auto KnnPtr = std::make_shared<KnnClassifier>(Train, 1);
          return [KnnPtr](const std::vector<double> &X) {
            return KnnPtr->predict(X);
          };
        }));

    std::printf("%-10s %7.1f%% | %18.3f %18.3f %14.3f %10.3f %10.3f\n",
                W->name().c_str(), 100.0 * SocFrac, SvmW, SvmU, Tree, Knn5,
                Knn1);
    Report.metric(W->name() + ".fscore_svm_weighted", SvmW);
    Report.metric(W->name() + ".fscore_svm_unweighted", SvmU);
    Report.metric(W->name() + ".fscore_dtree", Tree);
    Report.metric(W->name() + ".fscore_knn5", Knn5);
  }
  std::printf("\n(Paper claim: the weighted C-SVM handles the 3-10%% "
              "positive-class imbalance best;\n trees and nearest "
              "neighbour favour the majority class.)\n");
  return 0;
}
