//===- bench/table4_best_configs.cpp - Paper Table 4 ----------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table 4: the best IPAS and Baseline configurations under
/// the ideal-point criterion (closest to slowdown = 1, SOC reduction =
/// 100), with their SOC reduction and slowdown.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace ipas;
using namespace ipas::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseOptions(
      Argc, Argv, "Table 4: best configurations (ideal-point criterion)");
  printHeader("Table 4: best configurations", Opts);
  BenchReport Report("table4_best_configs", Opts);

  std::printf("%-10s | %14s %14s | %10s %10s\n", "Code", "SOC red. IPAS",
              "SOC red. Base", "Slow IPAS", "Slow Base");
  std::printf("%.*s\n", 70,
              "----------------------------------------------------------"
              "------------");
  for (const auto &W : selectedWorkloads(Opts)) {
    WorkloadEvaluation WE = evaluateWorkloadCached(*W, Opts.Cfg);
    const VariantEvaluation *BI = WE.bestVariant(Technique::Ipas);
    const VariantEvaluation *BB = WE.bestVariant(Technique::Baseline);
    if (!BI || !BB)
      continue;
    std::printf("%-10s | %13.2f%% %13.2f%% | %10.2f %10.2f\n",
                WE.WorkloadName.c_str(), BI->SocReductionPct,
                BB->SocReductionPct, BI->Slowdown, BB->Slowdown);
    Report.metric(WE.WorkloadName + ".ipas_soc_reduction_pct",
                  BI->SocReductionPct);
    Report.metric(WE.WorkloadName + ".ipas_slowdown", BI->Slowdown);
    Report.metric(WE.WorkloadName + ".baseline_soc_reduction_pct",
                  BB->SocReductionPct);
    Report.metric(WE.WorkloadName + ".baseline_slowdown", BB->Slowdown);
  }
  std::printf("\n(Paper, for reference: CoMD 67.6/62.7 at 1.17/2.09, HPCCG "
              "81.4/91.0 at 1.18/1.66,\n AMG 76.9/73.9 at 1.10/2.10, FFT "
              "90.0/88.5 at 1.35/1.81, IS 86.9/84.1 at 1.04/1.79.)\n");
  return 0;
}
