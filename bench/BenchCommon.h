//===- bench/BenchCommon.h - Shared harness plumbing for the benches ------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every table/figure harness accepts the same flags:
///   --runs N            evaluation injections per configuration
///   --train-samples N   training injections
///   --grid N            grid points per axis (N x N configurations)
///   --folds N           cross-validation folds
///   --top N             top-N configurations carried into evaluation
///   --seed S            master seed
///   --paper-scale       the paper's campaign sizes (2500/1024/25x20/5)
///   --workload NAME     restrict to one workload
/// Results of the expensive shared evaluation are cached under
/// .ipas-cache (set IPAS_NO_CACHE=1 to disable).
///
//===----------------------------------------------------------------------===//

#ifndef IPAS_BENCH_BENCHCOMMON_H
#define IPAS_BENCH_BENCHCOMMON_H

#include "core/ResultsCache.h"
#include "obs/Json.h"
#include "obs/Trace.h"
#include "support/ArgParser.h"
#include "support/Statistics.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace ipas {
namespace bench {

struct BenchOptions {
  PipelineConfig Cfg = PipelineConfig::defaults();
  std::string WorkloadFilter;
};

/// Parses the standard flag set; exits the process on --help or errors.
inline BenchOptions parseOptions(int Argc, const char *const *Argv,
                                 const std::string &Description) {
  int64_t Runs = -1, TrainSamples = -1, Grid = -1, Folds = -1, Top = -1;
  int64_t Seed = -1;
  bool PaperScale = false;
  std::string WorkloadFilter;

  ArgParser P(Description);
  P.addInt("runs", &Runs, "evaluation injections per configuration");
  P.addInt("train-samples", &TrainSamples, "training injections");
  P.addInt("grid", &Grid, "grid points per axis (NxN configurations)");
  P.addInt("folds", &Folds, "cross-validation folds");
  P.addInt("top", &Top, "top-N configurations to evaluate");
  P.addInt("seed", &Seed, "master seed");
  P.addBool("paper-scale", &PaperScale,
            "use the paper's campaign sizes (slow)");
  P.addString("workload", &WorkloadFilter,
              "restrict to one workload (CoMD/HPCCG/AMG/FFT/IS)");
  if (!P.parse(Argc, Argv))
    std::exit(2);

  BenchOptions Opts;
  Opts.Cfg = PaperScale ? PipelineConfig::paperScale()
                        : PipelineConfig::defaults();
  if (Runs > 0)
    Opts.Cfg.EvalRuns = static_cast<size_t>(Runs);
  if (TrainSamples > 0)
    Opts.Cfg.TrainSamples = static_cast<size_t>(TrainSamples);
  if (Grid > 0) {
    Opts.Cfg.Grid.CSteps = static_cast<unsigned>(Grid);
    Opts.Cfg.Grid.GammaSteps = static_cast<unsigned>(Grid);
  }
  if (Folds > 1)
    Opts.Cfg.Grid.Folds = static_cast<unsigned>(Folds);
  if (Top > 0)
    Opts.Cfg.TopN = static_cast<unsigned>(Top);
  if (Seed >= 0)
    Opts.Cfg.Seed = static_cast<uint64_t>(Seed);
  Opts.WorkloadFilter = WorkloadFilter;
  return Opts;
}

/// The workloads selected by --workload (all five by default).
inline std::vector<std::unique_ptr<Workload>>
selectedWorkloads(const BenchOptions &Opts) {
  if (Opts.WorkloadFilter.empty())
    return makeAllWorkloads();
  std::vector<std::unique_ptr<Workload>> One;
  if (auto W = makeWorkload(Opts.WorkloadFilter)) {
    One.push_back(std::move(W));
  } else {
    std::fprintf(stderr, "error: unknown workload '%s'\n",
                 Opts.WorkloadFilter.c_str());
    std::exit(2);
  }
  return One;
}

inline void printHeader(const std::string &Title,
                        const BenchOptions &Opts) {
  std::printf("== %s ==\n", Title.c_str());
  std::printf("(train-samples=%zu eval-runs=%zu grid=%ux%u folds=%u "
              "top=%u seed=0x%llx)\n\n",
              Opts.Cfg.TrainSamples, Opts.Cfg.EvalRuns, Opts.Cfg.Grid.CSteps,
              Opts.Cfg.Grid.GammaSteps, Opts.Cfg.Grid.Folds, Opts.Cfg.TopN,
              static_cast<unsigned long long>(Opts.Cfg.Seed));
}

/// Machine-readable companion to the stdout tables: on destruction writes
/// BENCH_<name>.json (benchmark name, pipeline config, the metrics
/// recorded with metric(), and wall time) into the current directory, or
/// $IPAS_BENCH_DIR when set. Failures are warnings — a read-only
/// directory must not fail a benchmark run.
class BenchReport {
public:
  BenchReport(std::string BenchName, const BenchOptions &Opts)
      : Name(std::move(BenchName)), Opts(Opts),
        StartUs(obs::monotonicMicros()) {}

  void metric(const std::string &Key, double V) { Doubles[Key] = V; }
  void metric(const std::string &Key, uint64_t V) { Ints[Key] = V; }
  void metric(const std::string &Key, int V) {
    Ints[Key] = static_cast<uint64_t>(V);
  }

  ~BenchReport() {
    obs::JsonWriter W;
    W.beginObject();
    W.key("benchmark").value(Name);
    W.key("config").beginObject();
    W.key("train_samples").value(static_cast<uint64_t>(Opts.Cfg.TrainSamples));
    W.key("eval_runs").value(static_cast<uint64_t>(Opts.Cfg.EvalRuns));
    W.key("grid_c_steps").value(Opts.Cfg.Grid.CSteps);
    W.key("grid_gamma_steps").value(Opts.Cfg.Grid.GammaSteps);
    W.key("folds").value(Opts.Cfg.Grid.Folds);
    W.key("top").value(Opts.Cfg.TopN);
    char Seed[24];
    std::snprintf(Seed, sizeof(Seed), "0x%llx",
                  static_cast<unsigned long long>(Opts.Cfg.Seed));
    W.key("seed").value(Seed);
    if (!Opts.WorkloadFilter.empty())
      W.key("workload").value(Opts.WorkloadFilter);
    W.endObject();
    W.key("metrics").beginObject();
    for (const auto &[K, V] : Ints)
      W.key(K).value(V);
    for (const auto &[K, V] : Doubles)
      W.key(K).value(V);
    W.endObject();
    W.key("wall_seconds")
        .value(static_cast<double>(obs::monotonicMicros() - StartUs) / 1e6);
    W.endObject();

    std::string Dir;
    if (const char *D = std::getenv("IPAS_BENCH_DIR"))
      Dir = std::string(D) + "/";
    std::string Path = Dir + "BENCH_" + Name + ".json";
    FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "warning: cannot write %s\n", Path.c_str());
      return;
    }
    std::fputs(W.str().c_str(), F);
    std::fputc('\n', F);
    std::fclose(F);
  }

private:
  std::string Name;
  BenchOptions Opts;
  uint64_t StartUs = 0;
  std::map<std::string, uint64_t> Ints;
  std::map<std::string, double> Doubles;
};

/// One row of the Figure 5 style outcome breakdown.
inline void printOutcomeRow(const char *Label, const CampaignResult &C) {
  std::printf("  %-12s symptom=%5.1f%%  detected=%5.1f%%  masked=%5.1f%%  "
              "soc=%5.2f%%\n",
              Label,
              100.0 * (C.fraction(Outcome::Crash) +
                       C.fraction(Outcome::Hang)),
              100.0 * C.fraction(Outcome::Detected),
              100.0 * C.fraction(Outcome::Masked),
              100.0 * C.fraction(Outcome::SOC));
}

} // namespace bench
} // namespace ipas

#endif // IPAS_BENCH_BENCHCOMMON_H
