//===- bench/profile_overhead.cpp - Cost-profiler overhead ----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what cost profiling costs the interpreter: the same clean
/// run repeats with profiling off, in counting mode (the site-count hook
/// alone), and in calling-context mode (observer-driven context tree),
/// and the bench reports throughput plus the slowdown factors relative
/// to the unprofiled run. Counting mode is the one campaigns and the
/// pipeline lean on, so its slowdown — not the absolute throughputs,
/// which are machine-dependent — is regression-gated tightly by ctest
/// via ipas-bench-diff against the checked-in
/// tools/testdata/BENCH_profile_overhead.json baseline; context mode
/// gets a generous gate.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "fault/FunctionHarness.h"
#include "frontend/CodeGen.h"
#include "interp/CostProfiler.h"
#include "ir/Verifier.h"
#include "transform/Mem2Reg.h"
#include "transform/SimplifyCFG.h"

using namespace ipas;
using namespace ipas::bench;

namespace {

// The same Jacobi-style sweep prop_overhead.cpp uses: enough memory
// traffic and control flow per run that the per-step hook, not run
// setup, dominates the profiled-variant cost.
const char *KernelSource =
    "int kernel(int n) {\n"
    "  int a[64];\n"
    "  int i = 0;\n"
    "  while (i < 64) { a[i] = i * 3 + 1; i = i + 1; }\n"
    "  int sweep = 0;\n"
    "  int acc = 0;\n"
    "  while (sweep < n) {\n"
    "    int j = 1;\n"
    "    while (j < 63) {\n"
    "      a[j] = (a[j - 1] + a[j] + a[j + 1]) / 3;\n"
    "      j = j + 1;\n"
    "    }\n"
    "    acc = acc + a[32];\n"
    "    sweep = sweep + 1;\n"
    "  }\n"
    "  return acc;\n"
    "}\n";

std::unique_ptr<Module> compileKernel() {
  Diagnostics Diags;
  std::unique_ptr<Module> M = compileMiniC(KernelSource, "profile_overhead",
                                           Diags);
  if (!M || Diags.hasErrors()) {
    std::fprintf(stderr, "error: kernel does not compile:\n%s\n",
                 Diags.summary().c_str());
    std::exit(1);
  }
  removeUnreachableBlocks(*M);
  promoteAllocasToRegisters(*M);
  M->renumber();
  for (const std::string &E : verifyModule(*M)) {
    std::fprintf(stderr, "error: verifier: %s\n", E.c_str());
    std::exit(1);
  }
  return M;
}

enum class Variant { Off, Counting, Context };

/// \p NumRuns timed clean runs; returns runs per second. Each profiled
/// run constructs its own CostProfiler, exactly like real callers (one
/// profiler per profiled clean run), so construction cost is charged to
/// the profiling variant it belongs to.
double timedCleanRuns(const ModuleLayout &Layout, size_t NumRuns, Variant V,
                      uint64_t *StepsOut = nullptr) {
  FunctionHarness H("kernel", {RtValue::fromI64(24)});
  uint64_t T0 = obs::monotonicMicros();
  for (size_t R = 0; R != NumRuns; ++R) {
    ExecutionRecord Rec;
    if (V == Variant::Off) {
      Rec = H.execute(Layout, nullptr, UINT64_MAX);
    } else {
      CostProfiler Prof(Layout, V == Variant::Counting
                                    ? CostProfiler::Mode::Counting
                                    : CostProfiler::Mode::Context);
      Rec = H.executeProfiled(Layout, Prof);
      if (Prof.totalSteps() != Rec.Steps) {
        std::fprintf(stderr,
                     "error: profiled counts sum to %llu, run took %llu "
                     "steps\n",
                     static_cast<unsigned long long>(Prof.totalSteps()),
                     static_cast<unsigned long long>(Rec.Steps));
        std::exit(1);
      }
    }
    if (Rec.Status != RunStatus::Finished || !Rec.OutputValid) {
      std::fprintf(stderr, "error: clean run failed\n");
      std::exit(1);
    }
    if (StepsOut)
      *StepsOut = Rec.Steps;
  }
  double Secs =
      static_cast<double>(obs::monotonicMicros() - T0) / 1e6;
  return Secs > 0.0 ? static_cast<double>(NumRuns) / Secs : 0.0;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseOptions(
      Argc, Argv,
      "profile_overhead: clean-run throughput with cost profiling "
      "off / counting / calling-context");
  const size_t NumRuns = Opts.Cfg.EvalRuns;

  std::unique_ptr<Module> M = compileKernel();
  ModuleLayout Layout(*M);

  std::printf("== cost-profiler overhead ==\n");
  std::printf("(kernel: 64-point Jacobi sweep, %zu clean runs per "
              "variant)\n\n",
              NumRuns);

  // Warm up caches/allocator so the first measured variant is not
  // penalized.
  timedCleanRuns(Layout, NumRuns / 4 + 1, Variant::Off);

  uint64_t Steps = 0;
  double Off = timedCleanRuns(Layout, NumRuns, Variant::Off, &Steps);
  double Counting = timedCleanRuns(Layout, NumRuns, Variant::Counting);
  double Context = timedCleanRuns(Layout, NumRuns, Variant::Context);

  double SlowCounting = Counting > 0.0 ? Off / Counting : 0.0;
  double SlowContext = Context > 0.0 ? Off / Context : 0.0;

  std::printf("  %-16s %12s %10s\n", "variant", "runs/sec", "slowdown");
  std::printf("  %-16s %12.0f %9.2fx\n", "profiling off", Off, 1.0);
  std::printf("  %-16s %12.0f %9.2fx\n", "counting", Counting,
              SlowCounting);
  std::printf("  %-16s %12.0f %9.2fx\n", "context", Context, SlowContext);
  std::printf("  (%llu steps per run)\n",
              static_cast<unsigned long long>(Steps));

  BenchReport Report("profile_overhead", Opts);
  Report.metric("steps_per_run", Steps);
  Report.metric("runs_per_sec_off", Off);
  Report.metric("runs_per_sec_counting", Counting);
  Report.metric("runs_per_sec_context", Context);
  Report.metric("slowdown_counting_x", SlowCounting);
  Report.metric("slowdown_context_x", SlowContext);
  Report.metric("overhead_counting_pct", 100.0 * (SlowCounting - 1.0));
  Report.metric("overhead_context_pct", 100.0 * (SlowContext - 1.0));
  return 0;
}
