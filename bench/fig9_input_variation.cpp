//===- bench/fig9_input_variation.cpp - Paper Figure 9 ---------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 9: the classifier is trained on input 1 (the
/// training input) and the protected binary is then evaluated on the
/// larger inputs 2-4 of Table 5; the SOC reduction should transfer.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace ipas;
using namespace ipas::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseOptions(
      Argc, Argv,
      "Figure 9: SOC reduction when varying the input (trained on 1)");
  printHeader("Figure 9: SOC reduction across inputs", Opts);
  BenchReport Report("fig9_input_variation", Opts);

  std::printf("%-10s %10s %10s %10s %10s %9s\n", "workload", "input1",
              "input2", "input3", "input4", "average");

  for (const auto &W : selectedWorkloads(Opts)) {
    WorkloadEvaluation WE = evaluateWorkloadCached(*W, Opts.Cfg);
    const VariantEvaluation *Best = WE.bestVariant(Technique::Ipas);
    if (!Best)
      continue;
    IpasPipeline Pipeline(*W, Opts.Cfg);
    TrainingArtifacts A =
        Pipeline.collectAndTrain(/*RunGridSearch=*/false);
    std::set<unsigned> Ids = Pipeline.selectInstructions(
        Technique::Ipas, Best->Config.Params, A);
    IpasPipeline::ProtectedModule Prot = Pipeline.protect(Ids);
    IpasPipeline::ProtectedModule Unprot = Pipeline.protectNone();

    std::printf("%-10s", W->name().c_str());
    double Sum = 0.0;
    for (int Level = 1; Level <= 4; ++Level) {
      CampaignResult U =
          Pipeline.evaluate(Unprot, Opts.Cfg.Seed ^ (0xF90 + Level), Level);
      CampaignResult Pr =
          Pipeline.evaluate(Prot, Opts.Cfg.Seed ^ (0xF94 + Level), Level);
      double USoc = U.fraction(Outcome::SOC);
      double Reduction =
          USoc > 0.0
              ? 100.0 * (USoc - Pr.fraction(Outcome::SOC)) / USoc
              : 0.0;
      Sum += Reduction;
      std::printf(" %9.1f%%", Reduction);
      Report.metric(W->name() + ".soc_reduction_input" +
                        std::to_string(Level),
                    Reduction);
    }
    std::printf(" %8.1f%%\n", Sum / 4.0);
    Report.metric(W->name() + ".soc_reduction_avg", Sum / 4.0);
  }
  std::printf("\n(Paper shape: SOC reduction on inputs 2-4 is comparable "
              "to the training input;\n the paper saw extra variability "
              "only on AMG.)\n");
  return 0;
}
