//===- bench/prop_overhead.cpp - Propagation-tracing overhead -------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what shadow dual execution costs a campaign: the same
/// injection campaign runs with propagation tracing off, sampled at
/// 1-in-64 (the documented operating point), and always-on, and the
/// bench reports throughput plus the slowdown factors relative to the
/// untraced campaign. The slowdown ratios — not the absolute
/// throughputs, which are machine-dependent — are regression-gated by
/// ctest via ipas-bench-diff against the checked-in
/// tools/testdata/BENCH_prop_overhead.json baseline.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "fault/Campaign.h"
#include "fault/FunctionHarness.h"
#include "frontend/CodeGen.h"
#include "ir/Verifier.h"
#include "transform/Mem2Reg.h"
#include "transform/SimplifyCFG.h"

using namespace ipas;
using namespace ipas::bench;

namespace {

// A Jacobi-style sweep: enough memory traffic and control flow per run
// that the observer hooks, not campaign bookkeeping, dominate the
// traced-variant cost.
const char *KernelSource =
    "int kernel(int n) {\n"
    "  int a[64];\n"
    "  int i = 0;\n"
    "  while (i < 64) { a[i] = i * 3 + 1; i = i + 1; }\n"
    "  int sweep = 0;\n"
    "  int acc = 0;\n"
    "  while (sweep < n) {\n"
    "    int j = 1;\n"
    "    while (j < 63) {\n"
    "      a[j] = (a[j - 1] + a[j] + a[j + 1]) / 3;\n"
    "      j = j + 1;\n"
    "    }\n"
    "    acc = acc + a[32];\n"
    "    sweep = sweep + 1;\n"
    "  }\n"
    "  return acc;\n"
    "}\n";

std::unique_ptr<Module> compileKernel() {
  Diagnostics Diags;
  std::unique_ptr<Module> M = compileMiniC(KernelSource, "prop_overhead",
                                           Diags);
  if (!M || Diags.hasErrors()) {
    std::fprintf(stderr, "error: kernel does not compile:\n%s\n",
                 Diags.summary().c_str());
    std::exit(1);
  }
  removeUnreachableBlocks(*M);
  promoteAllocasToRegisters(*M);
  M->renumber();
  for (const std::string &E : verifyModule(*M)) {
    std::fprintf(stderr, "error: verifier: %s\n", E.c_str());
    std::exit(1);
  }
  return M;
}

/// One timed campaign; returns injections per second.
double timedCampaign(const ModuleLayout &Layout, size_t NumRuns,
                     uint64_t Seed, size_t PropSampleEvery,
                     size_t *TracedOut = nullptr) {
  FunctionHarness H("kernel", {RtValue::fromI64(24)});
  CampaignConfig CC;
  CC.NumRuns = NumRuns;
  CC.Seed = Seed;
  CC.TraceRuns = false;
  CC.ProgressEvery = NumRuns; // Quiet.
  CC.PropSampleEvery = PropSampleEvery;
  CampaignResult R = runCampaign(H, Layout, CC);
  if (TracedOut)
    *TracedOut = R.TracedRuns;
  return R.WallSeconds > 0.0
             ? static_cast<double>(NumRuns) / R.WallSeconds
             : 0.0;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseOptions(
      Argc, Argv,
      "prop_overhead: campaign throughput with propagation tracing "
      "off / sampled 1-in-64 / always-on");
  const size_t NumRuns = Opts.Cfg.EvalRuns;
  const uint64_t Seed = Opts.Cfg.Seed;

  std::unique_ptr<Module> M = compileKernel();
  ModuleLayout Layout(*M);

  std::printf("== propagation-tracing overhead ==\n");
  std::printf("(kernel: 64-point Jacobi sweep, %zu injections per "
              "variant, seed 0x%llx)\n\n",
              NumRuns, static_cast<unsigned long long>(Seed));

  // Warm up caches/allocator so the first measured variant is not
  // penalized.
  timedCampaign(Layout, NumRuns / 4 + 1, Seed, 0);

  size_t TracedSampled = 0, TracedAlways = 0;
  double Off = timedCampaign(Layout, NumRuns, Seed, 0);
  double Sampled = timedCampaign(Layout, NumRuns, Seed, 64, &TracedSampled);
  double Always = timedCampaign(Layout, NumRuns, Seed, 1, &TracedAlways);

  double SlowSampled = Sampled > 0.0 ? Off / Sampled : 0.0;
  double SlowAlways = Always > 0.0 ? Off / Always : 0.0;

  std::printf("  %-18s %12s %10s %8s\n", "variant", "runs/sec", "slowdown",
              "traced");
  std::printf("  %-18s %12.0f %9.2fx %8d\n", "tracing off", Off, 1.0, 0);
  std::printf("  %-18s %12.0f %9.2fx %8zu\n", "sampled 1-in-64", Sampled,
              SlowSampled, TracedSampled);
  std::printf("  %-18s %12.0f %9.2fx %8zu\n", "always-on", Always,
              SlowAlways, TracedAlways);

  BenchReport Report("prop_overhead", Opts);
  Report.metric("runs_per_sec_off", Off);
  Report.metric("runs_per_sec_sampled", Sampled);
  Report.metric("runs_per_sec_always", Always);
  Report.metric("slowdown_sampled_x", SlowSampled);
  Report.metric("slowdown_always_x", SlowAlways);
  Report.metric("overhead_sampled_pct", 100.0 * (SlowSampled - 1.0));
  Report.metric("overhead_always_pct", 100.0 * (SlowAlways - 1.0));
  return 0;
}
