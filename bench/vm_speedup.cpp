//===- bench/vm_speedup.cpp - Bytecode-VM campaign throughput -------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the threaded-code bytecode VM buys a campaign: the same
/// deterministic injection campaign runs on the tree-walking interpreter
/// and on the VM backend, and the bench reports throughput plus the
/// speedup factor. The record streams of the two variants are compared
/// run by run first — a speedup obtained by diverging from interpreter
/// semantics is a bug, not a result. The speedup ratio (not the absolute
/// throughputs, which are machine-dependent) is regression-gated by
/// ctest via ipas-bench-diff against the checked-in
/// tools/testdata/BENCH_vm_speedup.json baseline.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "fault/Campaign.h"
#include "fault/FunctionHarness.h"
#include "frontend/CodeGen.h"
#include "ir/Verifier.h"
#include "transform/Duplication.h"
#include "transform/Mem2Reg.h"
#include "transform/SimplifyCFG.h"

using namespace ipas;
using namespace ipas::bench;

namespace {

// The same Jacobi-style sweep prop_overhead uses: enough arithmetic,
// memory traffic and control flow per run that per-instruction dispatch
// cost — the thing the VM attacks — dominates campaign bookkeeping.
const char *KernelSource =
    "int kernel(int n) {\n"
    "  int a[64];\n"
    "  int i = 0;\n"
    "  while (i < 64) { a[i] = i * 3 + 1; i = i + 1; }\n"
    "  int sweep = 0;\n"
    "  int acc = 0;\n"
    "  while (sweep < n) {\n"
    "    int j = 1;\n"
    "    while (j < 63) {\n"
    "      a[j] = (a[j - 1] + a[j] + a[j + 1]) / 3;\n"
    "      j = j + 1;\n"
    "    }\n"
    "    acc = acc + a[32];\n"
    "    sweep = sweep + 1;\n"
    "  }\n"
    "  return acc;\n"
    "}\n";

std::unique_ptr<Module> compileKernel() {
  Diagnostics Diags;
  std::unique_ptr<Module> M =
      compileMiniC(KernelSource, "vm_speedup", Diags);
  if (!M || Diags.hasErrors()) {
    std::fprintf(stderr, "error: kernel does not compile:\n%s\n",
                 Diags.summary().c_str());
    std::exit(1);
  }
  removeUnreachableBlocks(*M);
  promoteAllocasToRegisters(*M);
  // Campaigns run on protected builds, so benchmark the protected form.
  duplicateAllInstructions(*M);
  M->renumber();
  for (const std::string &E : verifyModule(*M)) {
    std::fprintf(stderr, "error: verifier: %s\n", E.c_str());
    std::exit(1);
  }
  return M;
}

/// One timed campaign on the given backend; returns injections per
/// second and hands the result back for the equivalence check.
double timedCampaign(const ModuleLayout &Layout, size_t NumRuns,
                     uint64_t Seed, ExecBackend Backend,
                     CampaignResult *ResultOut = nullptr) {
  FunctionHarness H("kernel", {RtValue::fromI64(24)});
  CampaignConfig CC;
  CC.NumRuns = NumRuns;
  CC.Seed = Seed;
  CC.TraceRuns = false;
  CC.ProgressEvery = NumRuns; // Quiet.
  CC.Backend = Backend;
  CampaignResult R = runCampaign(H, Layout, CC);
  double RunsPerSec = R.WallSeconds > 0.0
                          ? static_cast<double>(NumRuns) / R.WallSeconds
                          : 0.0;
  if (ResultOut)
    *ResultOut = std::move(R);
  return RunsPerSec;
}

/// Equivalence first, speed second: both variants must produce the same
/// deterministic record stream (LatencyUs excluded, documented
/// machine-dependent).
bool sameRecordStream(const CampaignResult &A, const CampaignResult &B) {
  if (A.Records.size() != B.Records.size() || A.Counts != B.Counts)
    return false;
  for (size_t I = 0; I != A.Records.size(); ++I) {
    const InjectionRecord &X = A.Records[I], &Y = B.Records[I];
    if (X.InstructionId != Y.InstructionId || X.BitIndex != Y.BitIndex ||
        X.TargetValueStep != Y.TargetValueStep || X.Result != Y.Result)
      return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseOptions(
      Argc, Argv,
      "vm_speedup: campaign throughput, tree-walking interpreter vs "
      "threaded-code bytecode VM");
  const size_t NumRuns = Opts.Cfg.EvalRuns;
  const uint64_t Seed = Opts.Cfg.Seed;

  std::unique_ptr<Module> M = compileKernel();
  ModuleLayout Layout(*M);

  std::printf("== bytecode-VM campaign speedup ==\n");
  std::printf("(kernel: protected 64-point Jacobi sweep, %zu injections "
              "per variant, seed 0x%llx)\n\n",
              NumRuns, static_cast<unsigned long long>(Seed));

  // Warm up caches/allocator (and the lazy bytecode compile) so the
  // first measured variant is not penalized.
  timedCampaign(Layout, NumRuns / 4 + 1, Seed, ExecBackend::Vm);

  CampaignResult InterpR, VmR;
  double Interp =
      timedCampaign(Layout, NumRuns, Seed, ExecBackend::Interp, &InterpR);
  double Vm = timedCampaign(Layout, NumRuns, Seed, ExecBackend::Vm, &VmR);

  if (!sameRecordStream(InterpR, VmR)) {
    std::fprintf(stderr, "error: interpreter and VM record streams "
                         "diverged — speedup is meaningless\n");
    return 1;
  }
  std::printf("  record streams identical (%zu runs)\n\n",
              InterpR.Records.size());

  double Speedup = Interp > 0.0 ? Vm / Interp : 0.0;
  std::printf("  %-18s %12s %10s\n", "backend", "runs/sec", "speedup");
  std::printf("  %-18s %12.0f %9.2fx\n", "interpreter", Interp, 1.0);
  std::printf("  %-18s %12.0f %9.2fx\n", "bytecode vm", Vm, Speedup);

  BenchReport Report("vm_speedup", Opts);
  Report.metric("runs_per_sec_interp", Interp);
  Report.metric("runs_per_sec_vm", Vm);
  Report.metric("speedup_x", Speedup);
  return 0;
}
