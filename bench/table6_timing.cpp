//===- bench/table6_timing.cpp - Paper Table 6 -----------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Table 6: training time (grid search, step 3) and
/// classification + duplication time (step 4) per workload. Absolute
/// seconds depend on the machine and campaign scale; the paper's
/// observation is that training time is roughly constant across codes
/// (same sample count) and duplication time tracks code size.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace ipas;
using namespace ipas::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts =
      parseOptions(Argc, Argv, "Table 6: training and duplication time");
  printHeader("Table 6: training and duplication time", Opts);
  BenchReport Report("table6_timing", Opts);

  std::printf("%-26s", "");
  auto Workloads = selectedWorkloads(Opts);
  std::vector<WorkloadEvaluation> Evals;
  for (const auto &W : Workloads) {
    Evals.push_back(evaluateWorkloadCached(*W, Opts.Cfg));
    std::printf("%10s", W->name().c_str());
    Report.metric(W->name() + ".train_seconds",
                  Evals.back().Training.TrainSeconds);
    Report.metric(W->name() + ".duplicate_seconds",
                  Evals.back().DuplicateSeconds);
  }
  std::printf("\n%-26s", "Training time (sec)");
  for (const auto &WE : Evals)
    std::printf("%10.2f", WE.Training.TrainSeconds);
  std::printf("\n%-26s", "Duplication time (sec)");
  for (const auto &WE : Evals)
    std::printf("%10.2f", WE.DuplicateSeconds);
  std::printf("\n%-26s", "Total time (sec)");
  for (const auto &WE : Evals)
    std::printf("%10.2f", WE.Training.TrainSeconds + WE.DuplicateSeconds);
  std::printf("\n\n(Timings come from the cached evaluation when one "
              "exists; delete .ipas-cache\n or set IPAS_NO_CACHE=1 to "
              "re-measure on this machine.)\n");
  return 0;
}
