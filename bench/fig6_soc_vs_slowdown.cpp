//===- bench/fig6_soc_vs_slowdown.cpp - Paper Figure 6 --------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 6: % SOC reduction versus slowdown for the top-N
/// IPAS and Baseline configurations of each workload. Slowdown is the
/// clean-run dynamic-instruction ratio (protected / unprotected), the
/// documented stand-in for wall-clock time on this substrate.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace ipas;
using namespace ipas::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseOptions(
      Argc, Argv, "Figure 6: SOC reduction vs slowdown per configuration");
  printHeader("Figure 6: SOC reduction vs slowdown", Opts);
  BenchReport Report("fig6_soc_vs_slowdown", Opts);

  for (const auto &W : selectedWorkloads(Opts)) {
    WorkloadEvaluation WE = evaluateWorkloadCached(*W, Opts.Cfg);
    std::printf("%s\n", WE.WorkloadName.c_str());
    std::printf("  %-12s %-10s %-14s %-10s %-8s\n", "config", "slowdown",
                "soc-reduction", "dup-frac", "f-score");
    for (const VariantEvaluation &V : WE.Variants) {
      if (V.Tech == Technique::Unprotected)
        continue;
      std::printf("  %-12s %-10.3f %-14.1f %-10.3f %-8.3f\n",
                  V.Label.c_str(), V.Slowdown, V.SocReductionPct,
                  V.Dup.duplicatedFraction(), V.Config.FScore);
    }
    const VariantEvaluation *BI = WE.bestVariant(Technique::Ipas);
    const VariantEvaluation *BB = WE.bestVariant(Technique::Baseline);
    if (BI && BB)
      std::printf("  -> ideal-point best: %s (IPAS) vs %s (Baseline)\n\n",
                  BI->Label.c_str(), BB->Label.c_str());
    if (BI) {
      Report.metric(WE.WorkloadName + ".ipas_best_slowdown", BI->Slowdown);
      Report.metric(WE.WorkloadName + ".ipas_best_soc_reduction_pct",
                    BI->SocReductionPct);
    }
    if (BB) {
      Report.metric(WE.WorkloadName + ".baseline_best_slowdown",
                    BB->Slowdown);
      Report.metric(WE.WorkloadName + ".baseline_best_soc_reduction_pct",
                    BB->SocReductionPct);
    }
  }
  std::printf("(Paper shape: IPAS always offers a configuration with "
              "comparable SOC reduction\n at lower slowdown than the "
              "Shoestring-style baseline; full duplication costs most.)\n");
  return 0;
}
