//===- bench/fig5_coverage.cpp - Paper Figure 5 --------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 5: for each workload, the outcome breakdown
/// (observable symptom / detected by duplication / masked / SOC) of the
/// unprotected code, full duplication, and the top-N IPAS and Baseline
/// configurations, plus the 95% margin of error on the unprotected SOC
/// proportion (§6.2).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace ipas;
using namespace ipas::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts =
      parseOptions(Argc, Argv, "Figure 5: coverage results per workload");
  printHeader("Figure 5: coverage results", Opts);
  BenchReport Report("fig5_coverage", Opts);

  for (const auto &W : selectedWorkloads(Opts)) {
    WorkloadEvaluation WE = evaluateWorkloadCached(*W, Opts.Cfg);
    const VariantEvaluation *Unprot = WE.variant("unprotected");
    double SocP = Unprot->Campaign.fraction(Outcome::SOC);
    double Margin = proportionMarginOfError(
        SocP, Unprot->Campaign.totalRuns(), 0.95);
    std::printf("%s (unprotected SOC = %.2f%% +/- %.2f%% at 95%%)\n",
                WE.WorkloadName.c_str(), 100.0 * SocP, 100.0 * Margin);
    for (const VariantEvaluation &V : WE.Variants)
      printOutcomeRow(V.Label.c_str(), V.Campaign);
    std::printf("\n");
    Report.metric(WE.WorkloadName + ".unprotected_soc_pct", 100.0 * SocP);
    if (const VariantEvaluation *Best = WE.bestVariant(Technique::Ipas))
      Report.metric(WE.WorkloadName + ".ipas_best_soc_pct",
                    100.0 * Best->Campaign.fraction(Outcome::SOC));
  }
  std::printf("(Paper shape: SOC is a small minority of injections; "
              "masking dominates;\n full duplication and the protected "
              "variants convert SOC into detections.)\n");
  return 0;
}
