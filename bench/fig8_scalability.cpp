//===- bench/fig8_scalability.cpp - Paper Figure 8 -------------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Regenerates Figure 8: strong-scaling slowdown of the best IPAS
/// configuration per workload as the MPI rank count grows. Slowdown is
/// the critical-path cycle ratio (steps + communication cost) of the
/// protected versus unprotected job.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

using namespace ipas;
using namespace ipas::bench;

int main(int Argc, char **Argv) {
  BenchOptions Opts = parseOptions(
      Argc, Argv, "Figure 8: slowdown vs number of MPI processes");
  printHeader("Figure 8: strong-scaling slowdown (best IPAS config)",
              Opts);
  BenchReport Report("fig8_scalability", Opts);

  const int RankCounts[] = {1, 2, 4, 8};
  std::printf("%-10s", "workload");
  for (int P : RankCounts)
    std::printf("   P=%-5d", P);
  std::printf("\n");

  for (const auto &W : selectedWorkloads(Opts)) {
    // Pull the best configuration from the (cached) evaluation, then
    // rebuild the protected module deterministically without re-running
    // the grid search.
    WorkloadEvaluation WE = evaluateWorkloadCached(*W, Opts.Cfg);
    const VariantEvaluation *Best = WE.bestVariant(Technique::Ipas);
    if (!Best) {
      std::printf("%-10s (no IPAS variant)\n", W->name().c_str());
      continue;
    }
    IpasPipeline Pipeline(*W, Opts.Cfg);
    TrainingArtifacts A =
        Pipeline.collectAndTrain(/*RunGridSearch=*/false);
    std::set<unsigned> Ids = Pipeline.selectInstructions(
        Technique::Ipas, Best->Config.Params, A);
    IpasPipeline::ProtectedModule PM = Pipeline.protect(Ids);

    std::printf("%-10s", W->name().c_str());
    for (int P : RankCounts) {
      double Slowdown = Pipeline.scalabilitySlowdown(PM, P);
      std::printf("   %-7.3f", Slowdown);
      Report.metric(W->name() + ".slowdown_p" + std::to_string(P),
                    Slowdown);
    }
    std::printf("   (config %s)\n", Best->Label.c_str());
  }
  std::printf("\n(Paper shape: the slowdown stays essentially constant "
              "with scale, since only\n computation code is "
              "instrumented.)\n");
  return 0;
}
