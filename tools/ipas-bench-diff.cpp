//===- tools/ipas-bench-diff.cpp - Compare BENCH_*.json result files -----------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Compares the machine-readable BENCH_<name>.json files the benchmark
/// harnesses emit and fails loudly when a metric regresses:
///
///   ipas-bench-diff old/BENCH_fig5.json new/BENCH_fig5.json
///   ipas-bench-diff old.json new.json --threshold 10
///   ipas-bench-diff old.json new.json --higher-better coverage_pct
///
/// Metrics are lower-is-better by default (SOC rates, slowdowns, train
/// seconds); name the exceptions with --higher-better. A metric regresses
/// when it moves in the bad direction by more than --threshold percent.
/// wall_seconds is always informational only — wall time depends on the
/// machine, not the change under test.
///
/// A baseline metric that is absent from the candidate file is an error
/// (exit 3) unless listed in --ignore: a metric a benchmark stopped
/// emitting must never pass the gate silently. Metrics only in the
/// candidate are informational — a benchmark may grow new ones freely.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "support/ArgParser.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

using namespace ipas;

namespace {

std::set<std::string> splitCsv(const std::string &Csv) {
  std::set<std::string> Out;
  std::istringstream SS(Csv);
  std::string Tok;
  while (std::getline(SS, Tok, ','))
    if (!Tok.empty())
      Out.insert(Tok);
  return Out;
}

bool loadMetrics(const std::string &Path, std::string &BenchName,
                 std::map<std::string, double> &Metrics) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  std::optional<obs::JsonValue> Doc = obs::parseJson(SS.str());
  if (!Doc || !Doc->isObject()) {
    std::fprintf(stderr, "error: '%s' is not a JSON object\n",
                 Path.c_str());
    return false;
  }
  if (const obs::JsonValue *Name = Doc->get("benchmark"))
    BenchName = Name->asString();
  const obs::JsonValue *M = Doc->get("metrics");
  if (!M || !M->isObject()) {
    std::fprintf(stderr, "error: '%s' has no \"metrics\" object\n",
                 Path.c_str());
    return false;
  }
  for (const auto &[Key, V] : M->Members)
    if (V.isNumber())
      Metrics[Key] = V.asNumber();
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  double Threshold = 5.0;
  std::string HigherBetterCsv, IgnoreCsv;
  ArgParser P("ipas-bench-diff: compare two BENCH_*.json result files");
  P.addDouble("threshold", &Threshold,
              "percent a metric may move in the bad direction before this "
              "tool fails (default 5)");
  P.addString("higher-better", &HigherBetterCsv,
              "comma-separated metrics where larger is better");
  P.addString("ignore", &IgnoreCsv,
              "comma-separated metrics to report but never fail on");
  if (!P.parse(Argc, Argv))
    return 2;
  if (P.positionals().size() != 2) {
    std::fprintf(stderr,
                 "usage: ipas-bench-diff <old.json> <new.json> [flags]\n%s",
                 P.usage().c_str());
    return 2;
  }

  std::string OldName, NewName;
  std::map<std::string, double> OldM, NewM;
  if (!loadMetrics(P.positionals()[0], OldName, OldM) ||
      !loadMetrics(P.positionals()[1], NewName, NewM))
    return 1;
  if (!OldName.empty() && !NewName.empty() && OldName != NewName)
    std::printf("note: comparing different benchmarks ('%s' vs '%s')\n",
                OldName.c_str(), NewName.c_str());

  std::set<std::string> HigherBetter = splitCsv(HigherBetterCsv);
  std::set<std::string> Ignore = splitCsv(IgnoreCsv);
  Ignore.insert("wall_seconds"); // machine-dependent, never gate on it

  std::set<std::string> Keys;
  for (const auto &[K, V] : OldM)
    Keys.insert(K);
  for (const auto &[K, V] : NewM)
    Keys.insert(K);

  std::printf("%-28s %14s %14s %9s\n", "metric", "old", "new", "delta%");
  unsigned Regressions = 0, Missing = 0;
  for (const std::string &K : Keys) {
    auto OldIt = OldM.find(K), NewIt = NewM.find(K);
    if (OldIt != OldM.end() && NewIt == NewM.end()) {
      // Present in the baseline, gone from the candidate: the gate has
      // nothing to check, which must fail loudly rather than pass by
      // omission (unless the caller explicitly ignores the metric).
      bool Ignored = Ignore.count(K) != 0;
      std::printf("%-28s %14s %14s %9s  %s\n", K.c_str(), "present", "-",
                  "-", Ignored ? "(only in old, ignored)" : "MISSING");
      if (!Ignored) {
        std::fprintf(stderr,
                     "error: baseline metric '%s' is missing from '%s'; "
                     "the gate cannot check it (add it back, regenerate "
                     "the baseline, or pass --ignore %s)\n",
                     K.c_str(), P.positionals()[1].c_str(), K.c_str());
        ++Missing;
      }
      continue;
    }
    if (OldIt == OldM.end()) {
      std::printf("%-28s %14s %14s %9s  (only in new)\n", K.c_str(), "-",
                  "present", "-");
      continue;
    }
    double Old = OldIt->second, New = NewIt->second;
    double Pct = Old != 0.0 ? 100.0 * (New - Old) / std::fabs(Old)
                            : (New != 0.0 ? 100.0 : 0.0);
    // Bad direction: up for lower-is-better metrics, down otherwise.
    double Bad = HigherBetter.count(K) ? -Pct : Pct;
    bool Regressed = !Ignore.count(K) && Bad > Threshold;
    std::printf("%-28s %14.6g %14.6g %+8.1f%%%s\n", K.c_str(), Old, New,
                Pct,
                Regressed ? "  REGRESSED"
                          : (Ignore.count(K) ? "  (ignored)" : ""));
    Regressions += Regressed;
  }

  if (Missing) {
    std::printf("%u baseline metric(s) missing from the candidate\n",
                Missing);
    return 3;
  }
  if (Regressions) {
    std::printf("%u metric(s) regressed past %.1f%%\n", Regressions,
                Threshold);
    return 7;
  }
  std::printf("ok: no metric regressed past %.1f%%\n", Threshold);
  return 0;
}
