//===- tools/ipas-report.cpp - Render and validate JSONL traces -----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Renders an IPAS telemetry trace (docs/OBSERVABILITY.md) as a terminal
/// report, or validates it structurally:
///
///   ipas-report trace.jsonl              # phase times, outcomes, opcodes
///   ipas-report trace.jsonl --check      # well-formedness + span nesting
///   ipas-report trace.jsonl --top 20     # more rows in the opcode table
///
/// The report shows the phase-time breakdown (top-level spans aggregated
/// by name with min/mean/max), the campaign outcome histogram, and the
/// hottest interpreter opcodes — everything derived from the trace file
/// alone, so it works on traces from any machine.
///
/// --check exits nonzero when any line fails to parse, the header is
/// missing or out of place, span intervals partially overlap on a thread
/// (spans must nest), a span's duration is inconsistent with its
/// endpoints, a campaign.prop span (a propagation trace) escapes its
/// campaign phase span, a profile.* span (a profiled clean run) escapes
/// its named parent phase, or a campaign.record event (an .iprec store
/// written next to the trace) disagrees with the campaign.done event of
/// the same label on the outcome totals. The CTest suite runs it over a
/// fresh ipas-cc trace.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "support/ArgParser.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace ipas;
using namespace ipas::obs;

namespace {

const char *const OutcomeNames[] = {"crash", "hang", "detected", "masked",
                                    "soc"};
constexpr size_t NumOutcomeNames = 5;

/// Outcome totals carried by a campaign.done or campaign.record event.
struct CampaignTotals {
  std::string Label;
  std::string Path; ///< campaign.record only.
  uint64_t Rows = 0;
  uint64_t Totals[NumOutcomeNames] = {};

  bool sameTotals(const CampaignTotals &O) const {
    for (size_t K = 0; K != NumOutcomeNames; ++K)
      if (Totals[K] != O.Totals[K])
        return false;
    return true;
  }
};

/// One .ipprof store announced by a profile.store event.
struct ProfileStoreEv {
  std::string Label;
  std::string Path;
  std::string Mode;
  uint64_t Instructions = 0;
  uint64_t Steps = 0;
  uint64_t Cycles = 0;
};

struct SpanRec {
  std::string Name;
  std::string Parent;
  int Tid = 0;
  unsigned Depth = 0;
  uint64_t StartUs = 0;
  uint64_t EndUs = 0;
  uint64_t DurUs = 0;
};

struct TraceData {
  bool HaveHeader = false;
  JsonValue Header;
  std::vector<SpanRec> Spans;
  std::map<std::string, uint64_t> EventCounts;
  std::vector<CampaignTotals> CampaignDones;
  std::vector<CampaignTotals> RecordStores; ///< campaign.record events.
  std::vector<ProfileStoreEv> ProfileStores; ///< profile.store events.
  /// Flattened counters from the final `metrics` record.
  std::map<std::string, uint64_t> Counters;
  size_t Records = 0;
  uint64_t FirstTs = UINT64_MAX;
  uint64_t LastTs = 0;
};

struct Checker {
  int Violations = 0;

  void fail(size_t Line, const char *Fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
      __attribute__((format(printf, 3, 4)))
#endif
      ;
};

void Checker::fail(size_t Line, const char *Fmt, ...) {
  char Buf[512];
  va_list Ap;
  va_start(Ap, Fmt);
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Ap);
  va_end(Ap);
  std::fprintf(stderr, "ipas-report: line %zu: %s\n", Line, Buf);
  ++Violations;
}

uint64_t tsOf(const JsonValue &R) {
  const JsonValue *Ts = R.get("ts_us");
  return Ts ? Ts->asU64() : 0;
}

bool loadTrace(const std::string &Path, TraceData &T, Checker &C) {
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "ipas-report: cannot open '%s'\n", Path.c_str());
    return false;
  }
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    if (Line.empty())
      continue;
    std::optional<JsonValue> Parsed = parseJson(Line);
    if (!Parsed) {
      C.fail(LineNo, "malformed JSON");
      continue;
    }
    if (!Parsed->isObject()) {
      C.fail(LineNo, "record is not a JSON object");
      continue;
    }
    ++T.Records;
    const JsonValue *Type = Parsed->get("type");
    if (!Type || !Type->isString()) {
      C.fail(LineNo, "record has no string 'type'");
      continue;
    }
    const std::string &Kind = Type->asString();

    if (Kind == "header") {
      if (T.HaveHeader)
        C.fail(LineNo, "duplicate header record");
      else if (T.Records != 1)
        C.fail(LineNo, "header is not the first record");
      T.HaveHeader = true;
      T.Header = *Parsed;
    } else if (Kind == "span") {
      SpanRec S;
      if (const JsonValue *V = Parsed->get("name"))
        S.Name = V->asString();
      if (const JsonValue *V = Parsed->get("parent"))
        S.Parent = V->asString();
      if (const JsonValue *V = Parsed->get("tid"))
        S.Tid = static_cast<int>(V->asI64());
      if (const JsonValue *V = Parsed->get("depth"))
        S.Depth = static_cast<unsigned>(V->asU64());
      if (const JsonValue *V = Parsed->get("start_us"))
        S.StartUs = V->asU64();
      if (const JsonValue *V = Parsed->get("end_us"))
        S.EndUs = V->asU64();
      if (const JsonValue *V = Parsed->get("dur_us"))
        S.DurUs = V->asU64();
      if (S.Name.empty())
        C.fail(LineNo, "span without a name");
      if (S.EndUs < S.StartUs)
        C.fail(LineNo, "span '%s' ends before it starts", S.Name.c_str());
      else if (S.DurUs != S.EndUs - S.StartUs)
        C.fail(LineNo, "span '%s' duration %" PRIu64
                       " != end-start %" PRIu64,
               S.Name.c_str(), S.DurUs, S.EndUs - S.StartUs);
      T.FirstTs = std::min(T.FirstTs, S.StartUs);
      T.LastTs = std::max(T.LastTs, S.EndUs);
      T.Spans.push_back(std::move(S));
      continue; // span timestamps handled above
    } else if (Kind == "event") {
      const JsonValue *Name = Parsed->get("name");
      if (!Name || !Name->isString()) {
        C.fail(LineNo, "event without a name");
      } else {
        ++T.EventCounts[Name->asString()];
        const std::string &EventName = Name->asString();
        if (EventName == "campaign.done" ||
            EventName == "campaign.record") {
          CampaignTotals CT;
          if (const JsonValue *Attrs = Parsed->get("attrs")) {
            if (const JsonValue *V = Attrs->get("label"))
              CT.Label = V->asString();
            if (const JsonValue *V = Attrs->get("path"))
              CT.Path = V->asString();
            if (const JsonValue *V = Attrs->get("rows"))
              CT.Rows = V->asU64();
            for (size_t K = 0; K != NumOutcomeNames; ++K)
              if (const JsonValue *V = Attrs->get(OutcomeNames[K]))
                CT.Totals[K] = V->asU64();
          }
          (EventName == "campaign.done" ? T.CampaignDones
                                        : T.RecordStores)
              .push_back(std::move(CT));
        } else if (EventName == "profile.store") {
          ProfileStoreEv PS;
          if (const JsonValue *Attrs = Parsed->get("attrs")) {
            if (const JsonValue *V = Attrs->get("label"))
              PS.Label = V->asString();
            if (const JsonValue *V = Attrs->get("path"))
              PS.Path = V->asString();
            if (const JsonValue *V = Attrs->get("mode"))
              PS.Mode = V->asString();
            if (const JsonValue *V = Attrs->get("instructions"))
              PS.Instructions = V->asU64();
            if (const JsonValue *V = Attrs->get("steps"))
              PS.Steps = V->asU64();
            if (const JsonValue *V = Attrs->get("cycles"))
              PS.Cycles = V->asU64();
          }
          T.ProfileStores.push_back(std::move(PS));
        }
      }
    } else if (Kind == "log") {
      if (!Parsed->get("msg"))
        C.fail(LineNo, "log record without 'msg'");
    } else if (Kind == "metrics") {
      const JsonValue *M = Parsed->get("metrics");
      const JsonValue *Counters = M ? M->get("counters") : nullptr;
      if (!Counters)
        C.fail(LineNo, "metrics record without counters");
      else
        for (const auto &[Name, V] : Counters->Members)
          T.Counters[Name] = V.asU64();
    } else {
      C.fail(LineNo, "unknown record type '%s'", Kind.c_str());
    }
    uint64_t Ts = tsOf(*Parsed);
    if (Ts) {
      T.FirstTs = std::min(T.FirstTs, Ts);
      T.LastTs = std::max(T.LastTs, Ts);
    }
  }
  if (!T.HaveHeader)
    C.fail(0, "trace has no header record");
  return true;
}

/// Spans on one thread must form a laminar family: any two intervals are
/// either disjoint or one contains the other. Sort by (start asc, end
/// desc) and sweep with a stack of enclosing intervals.
void checkNesting(const TraceData &T, Checker &C) {
  std::map<int, std::vector<const SpanRec *>> ByTid;
  for (const SpanRec &S : T.Spans)
    ByTid[S.Tid].push_back(&S);
  for (auto &[Tid, Spans] : ByTid) {
    std::stable_sort(Spans.begin(), Spans.end(),
                     [](const SpanRec *A, const SpanRec *B) {
                       if (A->StartUs != B->StartUs)
                         return A->StartUs < B->StartUs;
                       return A->EndUs > B->EndUs;
                     });
    std::vector<const SpanRec *> Open;
    for (const SpanRec *S : Spans) {
      while (!Open.empty() && Open.back()->EndUs <= S->StartUs)
        Open.pop_back();
      if (!Open.empty() && S->EndUs > Open.back()->EndUs)
        C.fail(0,
               "tid %d: span '%s' [%" PRIu64 ", %" PRIu64
               "] partially overlaps '%s' [%" PRIu64 ", %" PRIu64 "]",
               Tid, S->Name.c_str(), S->StartUs, S->EndUs,
               Open.back()->Name.c_str(), Open.back()->StartUs,
               Open.back()->EndUs);
      Open.push_back(S);
    }
  }
}

/// Per-injection propagation traces run as a serial post-pass inside the
/// campaign phase, so every `campaign.prop` span must name "campaign" as
/// its parent and be fully contained in a campaign span on its thread.
/// A prop span outside the campaign would mean the tracer ran against a
/// harness the campaign was not measuring — silent corruption of the
/// phase accounting itself.
void checkPropSpans(const TraceData &T, Checker &C) {
  for (const SpanRec &S : T.Spans) {
    if (S.Name != "campaign.prop")
      continue;
    if (S.Parent != "campaign")
      C.fail(0,
             "campaign.prop span [%" PRIu64 ", %" PRIu64
             "] has parent '%s', expected 'campaign'",
             S.StartUs, S.EndUs, S.Parent.c_str());
    bool Contained = false;
    for (const SpanRec &Outer : T.Spans)
      if (Outer.Name == "campaign" && Outer.Tid == S.Tid &&
          Outer.StartUs <= S.StartUs && S.EndUs <= Outer.EndUs) {
        Contained = true;
        break;
      }
    if (!Contained)
      C.fail(0,
             "tid %d: campaign.prop span [%" PRIu64 ", %" PRIu64
             "] is not contained in any campaign span",
             S.Tid, S.StartUs, S.EndUs);
  }
}

/// Cost-profiled clean runs are serial sub-phases of a named parent
/// phase (cc.profile in the driver, pipeline.variant in the pipeline),
/// so every `profile.*` span must carry a non-empty parent and be fully
/// contained in a span of that name on its thread. A profile span
/// floating outside its parent would mean the profiler measured a run
/// the phase accounting did not — the cost attribution would then be
/// charged against the wrong phase.
void checkProfileSpans(const TraceData &T, Checker &C) {
  for (const SpanRec &S : T.Spans) {
    if (S.Name.rfind("profile.", 0) != 0)
      continue;
    if (S.Parent.empty()) {
      C.fail(0,
             "profile span '%s' [%" PRIu64 ", %" PRIu64
             "] has no parent phase",
             S.Name.c_str(), S.StartUs, S.EndUs);
      continue;
    }
    bool Contained = false;
    for (const SpanRec &Outer : T.Spans)
      if (Outer.Name == S.Parent && Outer.Tid == S.Tid &&
          Outer.StartUs <= S.StartUs && S.EndUs <= Outer.EndUs) {
        Contained = true;
        break;
      }
    if (!Contained)
      C.fail(0,
             "tid %d: profile span '%s' [%" PRIu64 ", %" PRIu64
             "] is not contained in any '%s' span",
             S.Tid, S.Name.c_str(), S.StartUs, S.EndUs, S.Parent.c_str());
  }
}

/// Every campaign.record event (a written .iprec store) must agree with
/// a campaign.done event of the same label on all five outcome totals:
/// the store is derived from the same CampaignResult, so any drift means
/// the record writer and the campaign driver disagree about what
/// happened — exactly the silent corruption this tool exists to catch.
void checkRecords(const TraceData &T, Checker &C) {
  for (const CampaignTotals &R : T.RecordStores) {
    bool LabelSeen = false, Matched = false;
    for (const CampaignTotals &D : T.CampaignDones) {
      if (D.Label != R.Label)
        continue;
      LabelSeen = true;
      Matched |= R.sameTotals(D);
    }
    if (!LabelSeen)
      C.fail(0,
             "record store '%s' (label '%s') has no matching "
             "campaign.done event",
             R.Path.c_str(), R.Label.c_str());
    else if (!Matched)
      C.fail(0,
             "record store '%s' (label '%s') outcome totals do not match "
             "any campaign.done event with that label",
             R.Path.c_str(), R.Label.c_str());
  }
}

std::string formatUs(uint64_t Us) {
  char Buf[32];
  if (Us >= 1000000)
    std::snprintf(Buf, sizeof(Buf), "%.2fs", static_cast<double>(Us) / 1e6);
  else if (Us >= 1000)
    std::snprintf(Buf, sizeof(Buf), "%.2fms",
                  static_cast<double>(Us) / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%" PRIu64 "us", Us);
  return Buf;
}

void printReport(const TraceData &T, int64_t TopN) {
  if (T.HaveHeader) {
    std::printf("trace header:\n");
    if (const JsonValue *Attrs = T.Header.get("attrs"))
      for (const auto &[K, V] : Attrs->Members) {
        std::string Rendered;
        if (V.isString())
          Rendered = V.asString();
        else if (V.K == JsonValue::Kind::Bool)
          Rendered = V.B ? "true" : "false";
        else if (V.IsInt)
          Rendered = std::to_string(V.UInt);
        else if (V.isNumber())
          Rendered = std::to_string(V.Num);
        else
          Rendered = "<value>";
        std::printf("  %-18s %s\n", K.c_str(), Rendered.c_str());
      }
    std::printf("\n");
  }

  uint64_t Wall = T.LastTs > T.FirstTs ? T.LastTs - T.FirstTs : 0;

  // Phase breakdown: aggregate spans by name. Percentages are of wall
  // time and only meaningful for non-overlapping phases, so the table is
  // sorted by total time with nested spans indented by minimum depth.
  struct Agg {
    uint64_t Total = 0, Min = UINT64_MAX, Max = 0;
    size_t Count = 0;
    unsigned MinDepth = UINT32_MAX;
  };
  std::map<std::string, Agg> Phases;
  for (const SpanRec &S : T.Spans) {
    Agg &A = Phases[S.Name];
    A.Total += S.DurUs;
    A.Min = std::min(A.Min, S.DurUs);
    A.Max = std::max(A.Max, S.DurUs);
    A.MinDepth = std::min(A.MinDepth, S.Depth);
    ++A.Count;
  }
  if (!Phases.empty()) {
    std::vector<std::pair<std::string, Agg>> Rows(Phases.begin(),
                                                  Phases.end());
    std::stable_sort(Rows.begin(), Rows.end(),
                     [](const auto &A, const auto &B) {
                       if (A.second.MinDepth != B.second.MinDepth)
                         return A.second.MinDepth < B.second.MinDepth;
                       return A.second.Total > B.second.Total;
                     });
    std::printf("phase breakdown (wall %s):\n", formatUs(Wall).c_str());
    std::printf("  %-28s %6s %10s %10s %10s %7s\n", "phase", "count",
                "total", "mean", "max", "% wall");
    for (const auto &[Name, A] : Rows) {
      std::string Indented(2 * (A.MinDepth > 0 ? A.MinDepth - 1 : 0), ' ');
      Indented += Name;
      std::printf("  %-28s %6zu %10s %10s %10s %6.1f%%\n",
                  Indented.c_str(), A.Count, formatUs(A.Total).c_str(),
                  formatUs(A.Total / A.Count).c_str(),
                  formatUs(A.Max).c_str(),
                  Wall ? 100.0 * static_cast<double>(A.Total) /
                             static_cast<double>(Wall)
                       : 0.0);
    }
    std::printf("\n");
  }

  // Outcome histogram from the final metrics snapshot.
  const auto &Outcomes = OutcomeNames;
  uint64_t OutcomeTotal = 0;
  for (const char *O : Outcomes) {
    auto It = T.Counters.find(std::string("fault.outcome.") + O);
    if (It != T.Counters.end())
      OutcomeTotal += It->second;
  }
  if (OutcomeTotal) {
    std::printf("campaign outcomes (%" PRIu64 " runs):\n", OutcomeTotal);
    for (const char *O : Outcomes) {
      auto It = T.Counters.find(std::string("fault.outcome.") + O);
      uint64_t N = It != T.Counters.end() ? It->second : 0;
      int Bar = static_cast<int>(
          50.0 * static_cast<double>(N) / static_cast<double>(OutcomeTotal));
      std::printf("  %-10s %8" PRIu64 " %6.2f%% %s\n", O, N,
                  100.0 * static_cast<double>(N) /
                      static_cast<double>(OutcomeTotal),
                  std::string(static_cast<size_t>(Bar), '#').c_str());
    }
    std::printf("\n");
  }

  // Hottest opcodes from interp.op.* counters.
  std::vector<std::pair<uint64_t, std::string>> Ops;
  for (const auto &[Name, V] : T.Counters)
    if (Name.rfind("interp.op.", 0) == 0)
      Ops.push_back({V, Name.substr(10)});
  if (!Ops.empty()) {
    std::sort(Ops.rbegin(), Ops.rend());
    uint64_t Total = 0;
    for (const auto &[N, Op] : Ops)
      Total += N;
    std::printf("hottest opcodes (%" PRIu64 " executed):\n", Total);
    size_t Limit = TopN > 0 ? static_cast<size_t>(TopN) : Ops.size();
    for (size_t K = 0; K != std::min(Limit, Ops.size()); ++K)
      std::printf("  %-12s %14" PRIu64 " %6.2f%%\n", Ops[K].second.c_str(),
                  Ops[K].first,
                  100.0 * static_cast<double>(Ops[K].first) /
                      static_cast<double>(Total));
    std::printf("\n");
  }

  if (!T.RecordStores.empty()) {
    std::printf("record stores written:\n");
    for (const CampaignTotals &R : T.RecordStores) {
      std::printf("  %-16s %6" PRIu64 " rows  %s\n", R.Label.c_str(),
                  R.Rows, R.Path.c_str());
      std::printf("    ");
      for (size_t K = 0; K != NumOutcomeNames; ++K)
        std::printf("%s %" PRIu64 "%s", OutcomeNames[K], R.Totals[K],
                    K + 1 != NumOutcomeNames ? "  " : "\n");
    }
    std::printf("\n");
  }

  if (!T.ProfileStores.empty()) {
    std::printf("profile stores written:\n");
    for (const ProfileStoreEv &P : T.ProfileStores) {
      std::printf("  %-16s %8s mode  %6" PRIu64 " instrs  %8" PRIu64
                  " steps  %10" PRIu64 " cycles\n",
                  P.Label.c_str(), P.Mode.c_str(), P.Instructions, P.Steps,
                  P.Cycles);
      std::printf("    %s\n", P.Path.c_str());
    }
    std::printf("\n");
  }

  if (!T.EventCounts.empty()) {
    std::printf("events:\n");
    for (const auto &[Name, N] : T.EventCounts)
      std::printf("  %-28s %8" PRIu64 "\n", Name.c_str(), N);
  }
}

} // namespace

int main(int Argc, char **Argv) {
  bool Check = false;
  int64_t TopN = 10;
  ArgParser P("ipas-report: render or validate an IPAS JSONL trace");
  P.addBool("check", &Check,
            "validate structure (parse, header, span nesting); exit "
            "nonzero on any violation");
  P.addInt("top", &TopN, "rows in the hottest-opcode table (default 10)");
  if (!P.parse(Argc, Argv))
    return 2;
  if (P.positionals().size() != 1) {
    std::fprintf(stderr, "usage: ipas-report <trace.jsonl> [flags]\n%s",
                 P.usage().c_str());
    return 2;
  }

  TraceData T;
  Checker C;
  if (!loadTrace(P.positionals()[0], T, C))
    return 1;
  checkNesting(T, C);
  checkPropSpans(T, C);
  checkProfileSpans(T, C);
  checkRecords(T, C);

  if (Check) {
    if (C.Violations) {
      std::fprintf(stderr, "ipas-report: %d violation(s)\n", C.Violations);
      return 1;
    }
    std::printf("ok: %zu records, %zu spans, %zu event kinds\n", T.Records,
                T.Spans.size(), T.EventCounts.size());
    return 0;
  }

  printReport(T, TopN);
  return C.Violations ? 1 : 0;
}
