//===- tools/ipas-cc.cpp - MiniC compiler/runner driver -------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// A command-line driver in the opt/lli mold: compiles a MiniC source
/// file, runs the selected passes, optionally protects it by duplication,
/// and either dumps the IR or executes a function.
///
///   ipas-cc prog.mc --emit-ir                         # dump IR
///   ipas-cc prog.mc --run main --args 10,20           # execute
///   ipas-cc prog.mc --O --protect --emit-ir           # optimize+protect
///   ipas-cc prog.mc --run f --args 8 --fault-step 100 --fault-bit 52
///   ipas-cc prog.mc --protect --lint                  # check invariants
///   ipas-cc prog.mc --O --protect --verify-each       # bisect pass bugs
///
//===----------------------------------------------------------------------===//

#include "analysis/Features.h"
#include "analysis/FunctionSummary.h"
#include "analysis/ProtectionLint.h"
#include "analysis/SocPropagation.h"
#include "fault/FunctionHarness.h"
#include "fault/Incremental.h"
#include "fault/ProfileBuild.h"
#include "fault/Propagation.h"
#include "fault/RecordBuild.h"
#include "frontend/CodeGen.h"
#include "interp/Interpreter.h"
#include "ir/IRPrinter.h"
#include "ir/Verifier.h"
#include "obs/CliOptions.h"
#include "obs/SummaryStore.h"
#include "support/ArgParser.h"
#include "transform/ConstantFold.h"
#include "transform/DCE.h"
#include "transform/Duplication.h"
#include "transform/Mem2Reg.h"
#include "transform/SimplifyCFG.h"
#include "vm/VM.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace ipas;

static std::vector<RtValue> parseArgs(const Function *F,
                                      const std::string &ArgsCsv) {
  std::vector<RtValue> Args;
  std::istringstream SS(ArgsCsv);
  std::string Tok;
  unsigned Index = 0;
  while (std::getline(SS, Tok, ',')) {
    if (Tok.empty())
      continue;
    if (Index >= F->numArgs()) {
      std::fprintf(stderr, "error: too many arguments for @%s\n",
                   F->name().c_str());
      std::exit(2);
    }
    Type T = F->arg(Index)->type();
    if (T.isF64())
      Args.push_back(RtValue::fromF64(std::strtod(Tok.c_str(), nullptr)));
    else
      Args.push_back(
          RtValue::fromI64(std::strtoll(Tok.c_str(), nullptr, 10)));
    ++Index;
  }
  return Args;
}

int main(int Argc, char **Argv) {
  bool EmitIr = false, Optimize = false, Protect = false, Verify = false;
  bool Lint = false, VerifyEach = false, RequireLocs = false;
  bool Interproc = false, Incremental = false;
  bool CallBoundaryChecks = false, LintCallBoundary = false;
  bool Profile = false, ProfileContext = false;
  std::string RunFn, ArgsCsv, RecordOut, PropOut, RecordIn, SummaryOut;
  std::string ProfileOut;
  std::string BackendName = "interp";
  int64_t FaultStep = -1, FaultBit = 0, MaxSteps = -1;
  int64_t CampaignRuns = 0, CampaignSeed = 0xf417, CampaignThreads = 1;
  int64_t PropSample = 0;

  ArgParser P("ipas-cc: compile, transform, protect, and run MiniC");
  P.addBool("emit-ir", &EmitIr, "print the final IR");
  P.addBool("O", &Optimize, "run constant folding + DCE");
  P.addBool("protect", &Protect, "apply full instruction duplication");
  P.addBool("verify-only", &Verify, "verify the module and exit");
  P.addBool("lint", &Lint,
            "check protection invariants (ipas-lint) after the passes");
  P.addBool("verify-each", &VerifyEach,
            "verify the module between every pass and name the first "
            "failing pass");
  P.addString("run", &RunFn, "function to execute");
  P.addString("args", &ArgsCsv, "comma-separated arguments for --run");
  P.addInt("fault-step", &FaultStep,
           "inject a bit flip at this value-producing dynamic step");
  P.addInt("fault-bit", &FaultBit, "bit to flip (modulo result width)");
  P.addInt("max-steps", &MaxSteps, "step budget (hang guard)");
  P.addBool("require-locs", &RequireLocs,
            "verifier also requires a valid source location on every "
            "instruction");
  P.addInt("campaign", &CampaignRuns,
           "run a fault-injection campaign of N runs over --run");
  P.addInt("seed", &CampaignSeed, "campaign RNG seed");
  P.addInt("threads", &CampaignThreads, "campaign worker threads");
  P.addString("backend", &BackendName,
              "execution engine for --run/--campaign: interp (reference "
              "interpreter, default) or vm (threaded-code bytecode VM, "
              "observably equivalent)");
  P.addString("record-out", &RecordOut,
              "write the campaign's .iprec provenance record store here");
  P.addInt("prop-sample", &PropSample,
           "trace fault propagation for every Nth campaign injection");
  P.addString("prop-out", &PropOut,
              "write the traced injections' .ipprop propagation store "
              "here (requires --prop-sample)");
  P.addBool("interproc", &Interproc,
            "use interprocedural (summary-aware) SOC propagation for "
            "campaign pruning and --prop-out claims");
  P.addBool("incremental", &Incremental,
            "draw per-function injection plans and reuse unchanged "
            "functions' outcomes from --record-in");
  P.addString("record-in", &RecordIn,
              "prior .iprec store to reuse under --incremental");
  P.addString("summary-out", &SummaryOut,
              "write the module's .ipsum function-summary store here");
  P.addBool("profile", &Profile,
            "profile one clean run of --run: per-instruction dynamic "
            "counts priced by the standard cycle model");
  P.addString("profile-out", &ProfileOut,
              "write the clean-run .ipprof cost profile here (implies "
              "--profile); with --protect, protection overhead is "
              "attributed per original site against a baseline build");
  P.addBool("profile-context", &ProfileContext,
            "profile per calling context (implies --profile)");
  P.addBool("call-boundary-checks", &CallBoundaryChecks,
            "with --protect, also check duplicated values right before "
            "every call they are passed to (closes lint rule R6)");
  P.addBool("lint-call-boundary", &LintCallBoundary,
            "with --lint, also enforce rule R6 (checked call boundaries)");
  obs::CliOptions Obs;
  obs::addCliFlags(P, Obs);
  if (!P.parse(Argc, Argv))
    return 2;
  if (P.positionals().size() != 1) {
    std::fprintf(stderr, "usage: ipas-cc <file.mc> [flags]\n%s",
                 P.usage().c_str());
    return 2;
  }
  if (!obs::applyCliFlags(Obs, "ipas-cc",
                          obs::AttrSet().add("input", P.positionals()[0])))
    return 2;
  if (BackendName != "interp" && BackendName != "vm") {
    std::fprintf(stderr,
                 "error: unknown backend '%s' (use interp or vm)\n",
                 BackendName.c_str());
    return 2;
  }
  const ExecBackend Backend =
      BackendName == "vm" ? ExecBackend::Vm : ExecBackend::Interp;

  std::ifstream In(P.positionals()[0]);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n",
                 P.positionals()[0].c_str());
    return 1;
  }
  std::ostringstream SS;
  SS << In.rdbuf();

  std::unique_ptr<Module> M;
  {
    obs::PhaseSpan Span("cc.compile");
    Diagnostics Diags;
    M = compileMiniC(SS.str(), P.positionals()[0], Diags);
    if (!M) {
      std::fprintf(stderr, "%s\n", Diags.summary().c_str());
      return 1;
    }
  }
  // The pass pipeline. With --verify-each, verifyModule runs after every
  // pass so a verifier failure names the pass that introduced it instead
  // of surfacing at the end of the pipeline.
  bool PipelineBroken = false;
  auto RunPass = [&](const char *Name, auto &&Pass) {
    if (PipelineBroken)
      return;
    {
      obs::PhaseSpan Span("cc.pass", obs::AttrSet().add("pass", Name));
      Pass();
    }
    if (!VerifyEach)
      return;
    std::vector<std::string> Errs = verifyModule(*M);
    if (Errs.empty())
      return;
    std::fprintf(stderr, "verification failed after pass '%s':\n", Name);
    for (const std::string &E : Errs)
      std::fprintf(stderr, "verifier: %s\n", E.c_str());
    PipelineBroken = true;
  };

  RunPass("simplifycfg", [&] { removeUnreachableBlocks(*M); });
  RunPass("mem2reg", [&] { promoteAllocasToRegisters(*M); });
  if (Optimize) {
    RunPass("constfold", [&] { foldConstants(*M); });
    RunPass("dce", [&] { eliminateDeadCode(*M); });
  }
  if (Protect)
    RunPass("duplicate", [&] {
      DuplicationOptions DupOpts;
      DupOpts.CheckCallBoundary = CallBoundaryChecks;
      DuplicationStats Stats = duplicateInstructions(
          *M, [](const Instruction &) { return true; }, DupOpts);
      std::fprintf(stderr, "; protected: %zu duplicated, %zu checks\n",
                   Stats.DuplicatedInstructions, Stats.ChecksInserted);
    });
  if (PipelineBroken)
    return 1;
  M->renumber();

  VerifierOptions VerifyOpts;
  VerifyOpts.RequireDebugLocs = RequireLocs;
  std::vector<std::string> Errs = verifyModule(*M, VerifyOpts);
  for (const std::string &E : Errs)
    std::fprintf(stderr, "verifier: %s\n", E.c_str());
  if (!Errs.empty())
    return 1;
  if (Verify) {
    std::printf("ok: %zu instructions across %zu functions\n",
                M->numInstructions(), M->numFunctions());
    return 0;
  }

  if (Lint) {
    LintOptions LintOpts;
    LintOpts.ExpectFullDuplication = Protect;
    LintOpts.CheckCallBoundary = LintCallBoundary;
    std::vector<LintViolation> Violations =
        lintProtectedModule(*M, LintOpts);
    for (const LintViolation &V : Violations)
      std::fprintf(stderr, "lint: %s\n", V.toString().c_str());
    if (!Violations.empty())
      return 6;
    std::printf("lint: no violations\n");
  }

  if (EmitIr)
    std::fputs(printModule(*M).c_str(), stdout);

  // Interprocedural analysis artifacts, shared by campaign pruning,
  // --prop-out's static claims, and --summary-out.
  std::unique_ptr<CallGraph> CG;
  std::unique_ptr<ModuleSummaries> Summaries;
  std::unique_ptr<SocPropagation> InterSoc;
  if (Interproc || !SummaryOut.empty()) {
    obs::PhaseSpan Span("cc.summaries");
    CG = std::make_unique<CallGraph>(*M);
    Summaries = std::make_unique<ModuleSummaries>(*M, *CG);
  }
  if (Interproc) {
    InterSoc = std::make_unique<SocPropagation>(*M, *Summaries);
    SocPropagation Intra(*M);
    size_t InterBenign = 0, IntraBenign = 0;
    for (bool B : InterSoc->provablyBenign())
      InterBenign += B;
    for (bool B : Intra.provablyBenign())
      IntraBenign += B;
    std::printf("interproc: %zu of %zu sites provably benign "
                "(intraprocedural %zu)\n",
                InterBenign, M->numInstructions(), IntraBenign);
  }
  if (!SummaryOut.empty()) {
    obs::SummaryStore Sum;
    Sum.ModuleName = M->name();
    Sum.EntryFunction = RunFn;
    for (const Function *F : *M) {
      obs::SummaryFunc SF;
      SF.Name = F->name();
      SF.ContentHash = Summaries->contentHash(F);
      SF.ReachableHash = Summaries->reachableHash(F);
      for (const Function *C : CG->callees(F))
        SF.Callees.push_back(C->name());
      for (const ArgChannel &Ch : Summaries->summary(F).Args) {
        obs::SummaryArg A;
        A.SinkMask = Ch.SinkMask;
        A.FlowsToReturn = Ch.FlowsToReturn ? 1 : 0;
        A.MinSinkDistance = Ch.MinSinkDistance;
        SF.Args.push_back(A);
      }
      Sum.Functions.push_back(std::move(SF));
    }
    std::string Err;
    if (!obs::writeSummaryStore(Sum, SummaryOut, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    std::printf("summary store: %s (%zu functions)\n", SummaryOut.c_str(),
                Sum.Functions.size());
  }

  if (RunFn.empty()) {
    if (Profile || !ProfileOut.empty() || ProfileContext) {
      std::fprintf(stderr,
                   "error: --profile needs --run (profiling is a clean "
                   "run of one function)\n");
      return 2;
    }
    return 0;
  }
  const Function *F = M->getFunction(RunFn);
  if (!F) {
    std::fprintf(stderr, "error: no function '%s'\n", RunFn.c_str());
    return 1;
  }
  std::vector<RtValue> Args = parseArgs(F, ArgsCsv);
  if (Args.size() != F->numArgs()) {
    std::fprintf(stderr, "error: @%s takes %u argument(s), got %zu\n",
                 F->name().c_str(), F->numArgs(), Args.size());
    return 2;
  }

  ModuleLayout Layout(*M);

  // Cost profiling: one serial clean run with the profiler armed. Runs
  // before any campaign so an incremental campaign can reuse the
  // profiled run's per-function hashes instead of re-deriving them.
  bool DoProfile = Profile || !ProfileOut.empty() || ProfileContext;
  std::vector<uint64_t> ProfHashes;
  if (DoProfile) {
    obs::PhaseSpan Span(
        "cc.profile",
        obs::AttrSet()
            .add("function", RunFn)
            .add("mode", ProfileContext ? "context" : "counting"));
    FunctionHarness ProfHarness(RunFn, Args);
    CostProfiler Prof(Layout, ProfileContext
                                  ? CostProfiler::Mode::Context
                                  : CostProfiler::Mode::Counting);
    Prof.enableFunctionHashes();
    ProfileBuildInputs PIn;
    PIn.EntryFunction = RunFn;
    PIn.Label = "cc.profile";
    PIn.SourceText = SS.str();
    obs::ProfileStore PS;
    std::string Err;
    if (!buildProfileStore(ProfHarness, Layout, Prof, PIn, PS, &Err)) {
      std::fprintf(stderr, "error: %s\n", Err.c_str());
      return 1;
    }
    ProfHashes = Prof.functionHashes();
    std::printf("profile: %llu steps, %llu model cycles (%s mode)\n",
                static_cast<unsigned long long>(PS.CleanSteps),
                static_cast<unsigned long long>(PS.TotalCycles),
                ProfileContext ? "context" : "counting");

    if (Protect) {
      // Baseline build: the same source through the identical pass
      // pipeline minus `duplicate`, profiled on the same arguments — the
      // reference every added cycle is attributed against.
      Diagnostics BaseDiags;
      std::unique_ptr<Module> BaseM =
          compileMiniC(SS.str(), P.positionals()[0], BaseDiags);
      if (!BaseM) {
        std::fprintf(stderr, "error: baseline recompile failed: %s\n",
                     BaseDiags.summary().c_str());
        return 1;
      }
      removeUnreachableBlocks(*BaseM);
      promoteAllocasToRegisters(*BaseM);
      if (Optimize) {
        foldConstants(*BaseM);
        eliminateDeadCode(*BaseM);
      }
      BaseM->renumber();
      ModuleLayout BaseLayout(*BaseM);
      FunctionHarness BaseHarness(RunFn, Args);
      CostProfiler BaseProf(BaseLayout, CostProfiler::Mode::Counting,
                            Prof.model());
      ExecutionRecord BR = BaseHarness.executeProfiled(BaseLayout, BaseProf);
      if (BR.Status == RunStatus::Finished && BR.OutputValid) {
        if (!attributeOverhead(*BaseM, BaseProf.flatCounts(), *M,
                               Prof.flatCounts(), Prof.model(), PS, &Err)) {
          std::fprintf(stderr,
                       "warning: overhead attribution failed: %s\n",
                       Err.c_str());
        } else {
          double Pct =
              PS.BaselineTotalCycles
                  ? 100.0 *
                        (static_cast<double>(PS.TotalCycles) -
                         static_cast<double>(PS.BaselineTotalCycles)) /
                        static_cast<double>(PS.BaselineTotalCycles)
                  : 0.0;
          std::printf("profile overhead: %llu cycles vs baseline %llu "
                      "(+%.1f%%)\n",
                      static_cast<unsigned long long>(PS.TotalCycles),
                      static_cast<unsigned long long>(
                          PS.BaselineTotalCycles),
                      Pct);
        }
      } else {
        std::fprintf(stderr, "warning: baseline clean run failed; "
                             "overhead attribution skipped\n");
      }
    }

    if (!ProfileOut.empty()) {
      if (!writeProfileArtifact(PS, ProfileOut, &Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
      std::printf("profile store: %s (%zu instructions, %zu contexts)\n",
                  ProfileOut.c_str(), PS.Instructions.size(),
                  PS.Contexts.size());
    }
  }

  if (CampaignRuns > 0) {
    FunctionHarness Harness(RunFn, Args);
    CampaignConfig CC;
    CC.NumRuns = static_cast<size_t>(CampaignRuns);
    CC.Seed = static_cast<uint64_t>(CampaignSeed);
    CC.NumThreads =
        CampaignThreads > 0 ? static_cast<unsigned>(CampaignThreads) : 1;
    CC.Label = "cc.campaign";
    CC.Backend = Backend;
    if (PropSample > 0)
      CC.PropSampleEvery = static_cast<size_t>(PropSample);
    if (Interproc)
      CC.ProvablyBenign = &InterSoc->provablyBenign();

    CampaignResult R;
    std::vector<obs::FunctionMeta> FnMetas;
    obs::RecordStore PriorStore; // must outlive the incremental campaign
    if (Incremental) {
      IncrementalConfig IC;
      IC.Base = CC;
      if (!ProfHashes.empty())
        IC.ProfileHashes = &ProfHashes; // reuse the profiled clean run
      if (!RecordIn.empty()) {
        std::string Err;
        if (!obs::readRecordStore(PriorStore, RecordIn, &Err)) {
          std::fprintf(stderr, "error: %s\n", Err.c_str());
          return 1;
        }
        IC.Prior = &PriorStore;
      }
      IncrementalResult IR = runIncrementalCampaign(Harness, Layout, *M, IC);
      R = std::move(IR.Campaign);
      FnMetas = std::move(IR.FunctionMetas);
      std::printf("incremental: %zu reused, %zu executed, %zu pruned of "
                  "%zu runs\n",
                  IR.ReusedRuns, IR.ExecutedRuns, R.PrunedRuns,
                  R.Records.size());
      for (const obs::FunctionMeta &FM : FnMetas)
        std::printf("  @%s: %s (%llu reused of %llu planned)\n",
                    M->function(FM.FunctionIndex)->name().c_str(),
                    invalidationReasonName(
                        static_cast<InvalidationReason>(FM.Invalidation)),
                    static_cast<unsigned long long>(FM.ReusedRuns),
                    static_cast<unsigned long long>(FM.PlannedRuns));
    } else {
      R = runCampaign(Harness, Layout, CC);
    }
    std::printf("campaign: %zu runs on @%s\n", R.Records.size(),
                RunFn.c_str());
    for (size_t O = 0; O != NumOutcomes; ++O)
      std::printf("  %-8s %6zu\n", outcomeName(static_cast<Outcome>(O)),
                  R.Counts[O]);
    if (CC.ProvablyBenign)
      std::printf("pruned: %zu runs at %zu provably-benign sites\n",
                  R.PrunedRuns, R.PrunedSites);
    if (!PropOut.empty()) {
      if (R.PropRecords.empty())
        std::fprintf(stderr, "warning: --prop-out without traced "
                             "injections (pass --prop-sample N)\n");
      // Static claims for the cross-validation columns: the same
      // analysis whose benign verdicts drive campaign pruning —
      // interprocedural under --interproc, so ipas-prop --cross-validate
      // gates the sharper claims too.
      std::unique_ptr<SocPropagation> OwnSoc;
      if (!InterSoc)
        OwnSoc = std::make_unique<SocPropagation>(*M);
      const SocPropagation &Soc = InterSoc ? *InterSoc : *OwnSoc;
      std::vector<unsigned> SinkMasks(M->numInstructions(), 0);
      for (const Instruction *I : M->allInstructions())
        SinkMasks[I->id()] = Soc.info(I).SinkMask;
      PropBuildInputs PIn;
      PIn.M = M.get();
      PIn.Result = &R;
      PIn.EntryFunction = RunFn;
      PIn.Label = "cc.campaign";
      PIn.Seed = CC.Seed;
      PIn.SampleEvery = CC.PropSampleEvery;
      PIn.StaticBenign = &Soc.provablyBenign();
      PIn.StaticSinkMask = &SinkMasks;
      std::string Err;
      obs::PropagationStore PropStore = buildPropagationStore(PIn);
      if (!writePropagationRecord(PropStore, PropOut, &Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
      std::printf("propagation store: %s (%zu traces)\n", PropOut.c_str(),
                  PropStore.Records.size());
    }
    if (!RecordOut.empty()) {
      std::vector<unsigned> StepTrace = Harness.traceValueSteps(Layout);
      FeatureExtractor Extractor;
      std::vector<std::vector<double>> Rows = Extractor.extractModuleRows(*M);
      std::vector<double> Flat;
      Flat.reserve(Rows.size() * Extractor.numFeatures());
      for (const std::vector<double> &Row : Rows)
        Flat.insert(Flat.end(), Row.begin(), Row.end());
      RecordBuildInputs Inputs;
      Inputs.M = M.get();
      Inputs.Result = &R;
      Inputs.EntryFunction = RunFn;
      Inputs.Label = "cc.campaign";
      Inputs.Seed = CC.Seed;
      Inputs.SourceText = SS.str();
      Inputs.ValueStepTrace = &StepTrace;
      Inputs.NumFeatures = Extractor.numFeatures();
      Inputs.Features = &Flat;
      if (!FnMetas.empty())
        Inputs.FunctionMetas = &FnMetas;
      obs::RecordStore Store = buildRecordStore(Inputs);
      std::string Err;
      if (!writeCampaignRecord(Store, RecordOut, &Err)) {
        std::fprintf(stderr, "error: %s\n", Err.c_str());
        return 1;
      }
      std::printf("record store: %s (%zu rows)\n", RecordOut.c_str(),
                  Store.Rows.size());
    }
    return 0;
  }

  FaultPlan Plan;
  bool HavePlan = false;
  if (FaultStep >= 0) {
    Plan.TargetValueStep = static_cast<uint64_t>(FaultStep);
    Plan.BitDraw = static_cast<uint64_t>(FaultBit);
    HavePlan = true;
  }
  const uint64_t Budget =
      MaxSteps > 0 ? static_cast<uint64_t>(MaxSteps) : UINT64_MAX;

  RunStatus S;
  TrapKind Trap = TrapKind::None;
  uint64_t Steps = 0;
  bool FaultInjected = false;
  RtValue Ret;
  {
    obs::PhaseSpan Span("cc.run", obs::AttrSet()
                                      .add("function", RunFn)
                                      .add("backend", BackendName));
    std::unique_ptr<vm::VmProgram> Prog;
    if (Backend == ExecBackend::Vm) {
      std::string Err;
      Prog = vm::compile(Layout, &Err);
      if (!Prog)
        std::fprintf(stderr,
                     "warning: vm compile failed (%s); falling back to "
                     "the interpreter\n",
                     Err.empty() ? "unsupported construct" : Err.c_str());
    }
    if (Prog) {
      vm::VmContext VCtx(*Prog);
      vm::VmContext::Result V = VCtx.run(
          Prog->indexOf(RunFn), Args, HavePlan ? &Plan : nullptr, Budget);
      S = V.Status;
      Trap = V.Trap;
      Steps = V.Steps;
      FaultInjected = V.FaultInjected;
      Ret = V.ReturnValue;
    } else {
      ExecutionContext Ctx(Layout);
      if (HavePlan)
        Ctx.setFaultPlan(Plan);
      Ctx.start(F, Args);
      S = Ctx.run(Budget);
      Trap = Ctx.trap();
      Steps = Ctx.steps();
      FaultInjected = Ctx.faultWasInjected();
      if (S == RunStatus::Finished)
        Ret = Ctx.returnValue();
    }
    Span.addAttr(obs::AttrSet()
                     .add("status", runStatusName(S))
                     .add("steps", Steps));
  }

  switch (S) {
  case RunStatus::Finished: {
    if (F->returnType().isF64())
      std::printf("result: %.17g\n", Ret.asF64());
    else if (!F->returnType().isVoid())
      std::printf("result: %lld\n", static_cast<long long>(Ret.asI64()));
    std::printf("executed %llu instructions%s\n",
                static_cast<unsigned long long>(Steps),
                FaultInjected ? " (fault injected)" : "");
    return 0;
  }
  case RunStatus::Detected:
    std::printf("fault detected by a soc.check after %llu instructions\n",
                static_cast<unsigned long long>(Steps));
    return 3;
  case RunStatus::Trapped:
    std::printf("trap: %s\n", trapKindName(Trap));
    return 4;
  case RunStatus::OutOfSteps:
    std::printf("step budget exceeded (possible hang)\n");
    return 5;
  default:
    return 1;
  }
}
