//===- tools/ipas-prop.cpp - Fault-propagation trace analytics -----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reads the .ipprop propagation stores written by `ipas-cc --prop-out`
/// and explains what the sampled injections actually did:
///
///   ipas-prop camp.ipprop                   # summary + per-injection table
///   ipas-prop camp.ipprop --dot 64          # DOT graph of run 64's spread
///   ipas-prop camp.ipprop --cross-validate  # static-vs-dynamic soundness
///
/// The summary mode renders one line per traced injection (depth,
/// corrupted-value count, masking tallies, latency to first output
/// corruption, dynamically reached sinks) plus an aggregate per-opcode
/// masking table — the dynamic complement of ipas-inspect's endpoint
/// tables.
///
/// The cross-validation mode is a soundness gate: it confronts the
/// static SocPropagation claims stored in the side table with the
/// dynamic ground truth of each traced record. A site the analysis
/// proved benign must never corrupt output; if any traced injection
/// into a statically-benign site ended in SOC the tool exits nonzero,
/// because that is a bug in the static analysis, not a statistic. The
/// classifier's predictions get the same treatment as a (non-fatal)
/// confusion report.
///
//===----------------------------------------------------------------------===//

#include "fault/Outcome.h"
#include "ir/Instruction.h"
#include "obs/Propagation.h"
#include "support/ArgParser.h"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace ipas;
using obs::PropagationStore;
using obs::PropEdge;
using obs::PropInstr;
using obs::PropMaskEvent;
using obs::PropRecord;

namespace {

const char *outcomeCodeName(uint8_t Code) {
  if (Code < NumOutcomes)
    return outcomeName(static_cast<Outcome>(Code));
  return "<bad outcome>";
}

const char *maskKindName(uint8_t Kind) {
  switch (Kind) {
  case obs::PropMaskLogical:
    return "logical";
  case obs::PropMaskOverwrite:
    return "overwrite";
  case obs::PropMaskDead:
    return "dead";
  }
  return "<bad mask>";
}

/// Renders a DynReachMask / StaticSinkMask as "store+ret+ctl" ("-" when
/// empty). The short names keep the per-record table narrow.
std::string reachMaskString(uint32_t Mask) {
  static const struct {
    uint32_t Bit;
    const char *Name;
  } Bits[] = {
      {obs::PropReachStore, "store"}, {obs::PropReachCallArgument, "arg"},
      {obs::PropReachReturn, "ret"},  {obs::PropReachControlFlow, "ctl"},
      {obs::PropReachCheck, "chk"},   {obs::PropReachTrap, "trap"},
  };
  std::string Out;
  for (const auto &B : Bits)
    if (Mask & B.Bit) {
      if (!Out.empty())
        Out += '+';
      Out += B.Name;
    }
  return Out.empty() ? "-" : Out;
}

struct StoreIndex {
  const PropagationStore *S = nullptr;
  std::map<uint32_t, const PropInstr *> ById;

  explicit StoreIndex(const PropagationStore &Store) : S(&Store) {
    for (const PropInstr &I : Store.Instructions)
      ById.emplace(I.Id, &I);
  }

  const PropInstr *instr(uint32_t Id) const {
    auto It = ById.find(Id);
    return It != ById.end() ? It->second : nullptr;
  }

  std::string functionName(uint32_t Index) const {
    if (Index < S->Functions.size())
      return S->Functions[Index];
    return "<fn" + std::to_string(Index) + ">";
  }

  std::string opcodeOf(uint32_t Id) const {
    const PropInstr *I = instr(Id);
    return I ? opcodeName(static_cast<Opcode>(I->Opcode)) : "?";
  }
};

void printSummary(const StoreIndex &Ix) {
  const PropagationStore &S = *Ix.S;
  std::printf("module:   %s\n", S.ModuleName.c_str());
  std::printf("entry:    @%s  label: %s  seed: 0x%llx\n",
              S.EntryFunction.c_str(),
              S.Label.empty() ? "<none>" : S.Label.c_str(),
              static_cast<unsigned long long>(S.Seed));
  std::printf("clean:    %llu steps, %llu value steps\n",
              static_cast<unsigned long long>(S.CleanSteps),
              static_cast<unsigned long long>(S.CleanValueSteps));
  std::printf("traced:   %zu of %llu injections (1 in %llu sampled)\n",
              S.Records.size(),
              static_cast<unsigned long long>(S.TotalRuns),
              static_cast<unsigned long long>(S.SampleEvery));

  size_t Reached = 0, Diverged = 0;
  uint64_t LatencySum = 0, DepthSum = 0;
  for (const PropRecord &R : S.Records) {
    if (R.reachedOutput()) {
      ++Reached;
      LatencySum += R.latencyToOutput();
    }
    Diverged += R.ControlDiverged;
    DepthSum += R.PropagationDepth;
  }
  std::printf("reach:    %zu reached output", Reached);
  if (Reached)
    std::printf(" (mean latency %.1f value steps)",
                static_cast<double>(LatencySum) /
                    static_cast<double>(Reached));
  std::printf(", %zu diverged control flow\n", Diverged);
  if (!S.Records.empty())
    std::printf("depth:    mean propagation depth %.1f\n",
                static_cast<double>(DepthSum) /
                    static_cast<double>(S.Records.size()));
}

void printRecords(const StoreIndex &Ix) {
  const PropagationStore &S = *Ix.S;
  std::printf("\n== traced injections ==\n");
  std::printf("%6s %5s %-8s %3s %-8s %5s %7s %7s %9s %5s %5s %5s  %s\n",
              "run", "id", "opcode", "bit", "outcome", "depth", "corrupt",
              "latency", "first-out", "lgc", "ovw", "dead", "reach");
  for (const PropRecord &R : S.Records) {
    char Latency[24], FirstOut[24];
    if (R.reachedOutput()) {
      std::snprintf(Latency, sizeof Latency, "%" PRIu64,
                    R.latencyToOutput());
      std::snprintf(FirstOut, sizeof FirstOut, "%" PRIu64,
                    R.FirstOutputStep);
    } else {
      std::snprintf(Latency, sizeof Latency, "-");
      std::snprintf(FirstOut, sizeof FirstOut, "-");
    }
    std::printf("%6llu %5u %-8s %3u %-8s %5u %7llu %7s %9s %5llu %5llu "
                "%5llu  %s%s\n",
                static_cast<unsigned long long>(R.RunIndex),
                R.InstructionId, Ix.opcodeOf(R.InstructionId).c_str(),
                R.BitIndex, outcomeCodeName(R.Outcome), R.PropagationDepth,
                static_cast<unsigned long long>(R.CorruptedValues), Latency,
                FirstOut, static_cast<unsigned long long>(R.MaskedLogical),
                static_cast<unsigned long long>(R.MaskedOverwrite),
                static_cast<unsigned long long>(R.MaskedDead),
                reachMaskString(R.DynReachMask).c_str(),
                R.ControlDiverged ? " [diverged]" : "");
  }
}

void printMaskingTable(const StoreIndex &Ix) {
  // Aggregate masking events across all traced injections, keyed by the
  // masking instruction's opcode.
  std::map<uint8_t, std::array<uint64_t, 3>> ByOpcode;
  for (const PropRecord &R : Ix.S->Records)
    for (const PropMaskEvent &M : R.Masks)
      if (M.Kind < 3)
        ByOpcode[M.Opcode][M.Kind] += M.Count;

  std::printf("\n== masking by opcode (dynamic) ==\n");
  if (ByOpcode.empty()) {
    std::printf("(no masking events traced)\n");
    return;
  }
  std::printf("%-10s %8s %9s %6s %7s\n", "opcode", "logical", "overwrite",
              "dead", "total");
  for (const auto &[Op, Counts] : ByOpcode) {
    uint64_t Total = Counts[0] + Counts[1] + Counts[2];
    std::printf("%-10s %8llu %9llu %6llu %7llu\n",
                opcodeName(static_cast<Opcode>(Op)),
                static_cast<unsigned long long>(Counts[0]),
                static_cast<unsigned long long>(Counts[1]),
                static_cast<unsigned long long>(Counts[2]),
                static_cast<unsigned long long>(Total));
  }
}

/// Writes one injection's propagation graph as GraphViz DOT. Def-use
/// edges are solid, memory edges dashed, control edges bold red; the
/// injection site is the doubled octagon.
int printDot(const StoreIndex &Ix, uint64_t RunIndex) {
  const PropRecord *Rec = nullptr;
  for (const PropRecord &R : Ix.S->Records)
    if (R.RunIndex == RunIndex) {
      Rec = &R;
      break;
    }
  if (!Rec) {
    std::fprintf(stderr,
                 "error: no traced record for run %llu (traced runs:",
                 static_cast<unsigned long long>(RunIndex));
    for (const PropRecord &R : Ix.S->Records)
      std::fprintf(stderr, " %llu",
                   static_cast<unsigned long long>(R.RunIndex));
    std::fprintf(stderr, ")\n");
    return 1;
  }

  std::printf("digraph prop_run_%llu {\n",
              static_cast<unsigned long long>(RunIndex));
  std::printf("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n");
  std::printf("  label=\"run %llu: bit %u of #%u (%s), outcome %s, "
              "depth %u\";\n",
              static_cast<unsigned long long>(RunIndex), Rec->BitIndex,
              Rec->InstructionId, Ix.opcodeOf(Rec->InstructionId).c_str(),
              outcomeCodeName(Rec->Outcome), Rec->PropagationDepth);

  // Nodes: every id appearing in an edge, plus the injection site.
  std::map<uint32_t, bool> Nodes;
  Nodes[Rec->InstructionId] = true;
  for (const PropEdge &E : Rec->Edges) {
    Nodes.emplace(E.SrcId, false);
    Nodes.emplace(E.DstId, false);
  }
  for (const auto &[Id, IsInjection] : Nodes) {
    const PropInstr *I = Ix.instr(Id);
    std::string Loc;
    if (I && I->Line)
      Loc = "\\n@" + Ix.functionName(I->FunctionIndex) + ":" +
            std::to_string(I->Line) + ":" + std::to_string(I->Col);
    std::printf("  n%u [label=\"#%u %s%s\"%s];\n", Id, Id,
                Ix.opcodeOf(Id).c_str(), Loc.c_str(),
                IsInjection
                    ? ", shape=doubleoctagon, style=filled, fillcolor=gold"
                    : "");
  }
  for (const PropEdge &E : Rec->Edges) {
    const char *Style = "";
    switch (E.Kind) {
    case obs::PropEdgeDefUse:
      Style = "";
      break;
    case obs::PropEdgeMemory:
      Style = ", style=dashed, color=blue";
      break;
    case obs::PropEdgeControl:
      Style = ", style=bold, color=red";
      break;
    }
    if (E.Count > 1)
      std::printf("  n%u -> n%u [label=\"x%u\"%s];\n", E.SrcId, E.DstId,
                  E.Count, Style);
    else
      std::printf("  n%u -> n%u [label=\"\"%s];\n", E.SrcId, E.DstId,
                  Style);
  }
  std::printf("}\n");
  return 0;
}

/// Static-vs-dynamic cross-validation: the soundness gate.
///
/// For every traced injection, compare the static claim recorded in the
/// side table (provably benign / sink mask) against the dynamic ground
/// truth (outcome, DynReachMask). Soundness means static benign claims
/// over-approximate safety — a statically-benign site whose injection
/// dynamically corrupted output (SOC) is an analysis bug and fails the
/// gate with a nonzero exit.
int crossValidate(const StoreIndex &Ix) {
  const PropagationStore &S = *Ix.S;
  // Confusion matrix: static claim (benign / may-reach) x dynamic
  // behaviour (no reach / reached sink, no soc / soc).
  uint64_t Cell[2][3] = {{0, 0, 0}, {0, 0, 0}};
  struct Violation {
    const PropRecord *R;
    const PropInstr *I;
  };
  std::vector<Violation> Unsound;  // static benign, dynamic SOC
  std::vector<Violation> Suspect;  // static benign, dynamically reached
  std::vector<Violation> ClassMiss; // predicted skip, dynamic SOC
  bool AnyPrediction = false;

  for (const PropRecord &R : S.Records) {
    const PropInstr *I = Ix.instr(R.InstructionId);
    if (!I)
      continue;
    bool Soc = R.Outcome == static_cast<uint8_t>(Outcome::SOC);
    int Dyn = Soc ? 2 : (R.DynReachMask ? 1 : 0);
    int Static = I->StaticBenign ? 0 : 1;
    ++Cell[Static][Dyn];
    if (I->StaticBenign && Soc)
      Unsound.push_back({&R, I});
    else if (I->StaticBenign && R.DynReachMask)
      Suspect.push_back({&R, I});
    if (I->Predicted != 0)
      AnyPrediction = true;
    if (I->Predicted == 2 /* PredictSkip */ && Soc)
      ClassMiss.push_back({&R, I});
  }

  std::printf("== static-vs-dynamic cross-validation ==\n");
  std::printf("%zu traced injections against %zu static claims\n",
              S.Records.size(), S.Instructions.size());
  std::printf("\n%-16s %10s %12s %6s\n", "static \\ dynamic", "no-reach",
              "reached-sink", "soc");
  std::printf("%-16s %10llu %12llu %6llu\n", "provably-benign",
              static_cast<unsigned long long>(Cell[0][0]),
              static_cast<unsigned long long>(Cell[0][1]),
              static_cast<unsigned long long>(Cell[0][2]));
  std::printf("%-16s %10llu %12llu %6llu\n", "may-reach",
              static_cast<unsigned long long>(Cell[1][0]),
              static_cast<unsigned long long>(Cell[1][1]),
              static_cast<unsigned long long>(Cell[1][2]));

  auto PrintSite = [&](const char *Tag, const Violation &V) {
    std::printf("  %s run %llu: #%u %s @%s:%u:%u bit %u -> %s, reach %s, "
                "static mask %s\n",
                Tag, static_cast<unsigned long long>(V.R->RunIndex),
                V.I->Id, opcodeName(static_cast<Opcode>(V.I->Opcode)),
                Ix.functionName(V.I->FunctionIndex).c_str(), V.I->Line,
                V.I->Col, V.R->BitIndex, outcomeCodeName(V.R->Outcome),
                reachMaskString(V.R->DynReachMask).c_str(),
                reachMaskString(V.I->StaticSinkMask).c_str());
  };

  if (!Suspect.empty()) {
    std::printf("\nwarning: %zu statically-benign site(s) dynamically "
                "reached a sink (masked before output, but the static "
                "claim is tight at best):\n",
                Suspect.size());
    for (const Violation &V : Suspect)
      PrintSite("suspect", V);
  }

  if (AnyPrediction) {
    std::printf("\nclassifier: %zu predicted-skip site(s) whose traced "
                "injection went SOC\n",
                ClassMiss.size());
    for (const Violation &V : ClassMiss)
      PrintSite("miss", V);
  }

  if (!Unsound.empty()) {
    std::printf("\nUNSOUND: %zu statically-benign site(s) dynamically "
                "corrupted output:\n",
                Unsound.size());
    for (const Violation &V : Unsound)
      PrintSite("unsound", V);
    return 8;
  }
  std::printf("\nok: no statically-benign site corrupted output\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool CrossValidate = false;
  int64_t DotRun = -1;
  ArgParser P("ipas-prop: analyse .ipprop fault-propagation stores");
  P.addBool("cross-validate", &CrossValidate,
            "confront static SocPropagation claims with the dynamic "
            "ground truth; exit nonzero on a soundness violation");
  P.addInt("dot", &DotRun,
           "emit the propagation graph of this run index as GraphViz DOT");
  if (!P.parse(Argc, Argv))
    return 2;
  if (P.positionals().size() != 1) {
    std::fprintf(stderr, "usage: ipas-prop <store.ipprop> [flags]\n%s",
                 P.usage().c_str());
    return 2;
  }

  PropagationStore S;
  std::string Err;
  if (!obs::readPropagationStore(S, P.positionals()[0], &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", P.positionals()[0].c_str(),
                 Err.c_str());
    return 1;
  }
  StoreIndex Ix(S);

  if (DotRun >= 0)
    return printDot(Ix, static_cast<uint64_t>(DotRun));
  if (CrossValidate)
    return crossValidate(Ix);

  printSummary(Ix);
  printRecords(Ix);
  printMaskingTable(Ix);
  return 0;
}
