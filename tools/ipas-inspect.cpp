//===- tools/ipas-inspect.cpp - Campaign record-store analytics ----------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reads the .iprec provenance stores written by `ipas-cc --record-out`
/// and the pipeline's RecordDir and answers the questions a protection
/// campaign raises:
///
///   ipas-inspect camp.iprec                   # summary + heatmap + tables
///   ipas-inspect camp.iprec --no-source       # suppress source listing
///   ipas-inspect --diff old.iprec new.iprec   # what regressed between runs?
///   ipas-inspect --diff a.iprec b.iprec --threshold 2
///
/// The single-store mode renders an annotated source listing whose
/// per-line outcome columns sum exactly to the campaign's outcome totals,
/// a classifier confusion report (which source lines did the model get
/// wrong, ranked by how much SOC they produced), and per-opcode and
/// per-function vulnerability tables.
///
/// The diff mode compares two stores line-by-line and function-by-
/// function and exits nonzero when the SOC count grows by more than
/// --threshold or protection coverage drops by more than --threshold
/// percentage points — wired into CI, it turns silent protection
/// regressions into loud ones.
///
//===----------------------------------------------------------------------===//

#include "fault/Incremental.h"
#include "fault/Outcome.h"
#include "ir/Instruction.h"
#include "obs/LineTable.h"
#include "obs/Propagation.h"
#include "obs/RecordStore.h"
#include "support/ArgParser.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace ipas;
using obs::InjectionRow;
using obs::InstrRecord;
using obs::RecordStore;

namespace {

const char *outcomeCodeName(uint8_t Code) {
  if (Code < NumOutcomes)
    return outcomeName(static_cast<Outcome>(Code));
  return "<bad outcome>";
}

/// Everything the reports need, indexed once up front.
struct StoreIndex {
  const RecordStore *S = nullptr;
  std::map<uint32_t, const InstrRecord *> ById;
  /// Line -> outcome counts. Line 0 collects rows whose target has no
  /// known source location, so column sums always equal OutcomeTotals.
  std::map<uint32_t, std::array<uint64_t, NumOutcomes>> ByLine;
  std::map<uint32_t, uint64_t> SocById;      ///< Injections that went SOC.
  std::map<uint32_t, uint64_t> RunsById;     ///< Injections per target.
  std::map<uint8_t, std::array<uint64_t, NumOutcomes>> ByOpcode;
  std::map<uint32_t, std::array<uint64_t, NumOutcomes>> ByFunction;

  explicit StoreIndex(const RecordStore &Store) : S(&Store) {
    for (const InstrRecord &I : Store.Instructions)
      ById.emplace(I.Id, &I);
    for (const InjectionRow &R : Store.Rows) {
      unsigned O = R.Outcome < NumOutcomes ? R.Outcome : 0;
      const InstrRecord *I = nullptr;
      auto It = ById.find(R.InstructionId);
      if (It != ById.end())
        I = It->second;
      ByLine[I ? I->Line : 0][O] += 1;
      RunsById[R.InstructionId] += 1;
      if (R.Outcome == static_cast<uint8_t>(Outcome::SOC))
        SocById[R.InstructionId] += 1;
      if (I) {
        ByOpcode[I->Opcode][O] += 1;
        ByFunction[I->FunctionIndex][O] += 1;
      }
    }
  }

  uint64_t socTotal() const {
    unsigned Code = static_cast<unsigned>(Outcome::SOC);
    return Code < S->OutcomeTotals.size() ? S->OutcomeTotals[Code] : 0;
  }

  /// Protection coverage: protected originals over all non-shadow,
  /// non-check instructions, as a percentage.
  double coveragePct() const {
    uint64_t Originals = 0, Covered = 0;
    for (const InstrRecord &I : S->Instructions) {
      if (I.DupRole == static_cast<uint8_t>(DupRole::Shadow) ||
          I.DupRole == static_cast<uint8_t>(DupRole::Check))
        continue;
      ++Originals;
      if (I.Protected_)
        ++Covered;
    }
    return Originals ? 100.0 * static_cast<double>(Covered) /
                           static_cast<double>(Originals)
                     : 0.0;
  }

  std::string functionName(uint32_t Index) const {
    if (Index < S->Functions.size())
      return S->Functions[Index];
    return "<fn" + std::to_string(Index) + ">";
  }

  /// Per-line SOC counts (line 0 = unknown location).
  std::map<uint32_t, uint64_t> socByLine() const {
    std::map<uint32_t, uint64_t> Out;
    unsigned Code = static_cast<unsigned>(Outcome::SOC);
    for (const auto &[Line, Counts] : ByLine)
      if (Counts[Code])
        Out[Line] = Counts[Code];
    return Out;
  }

  /// Per-function SOC counts keyed by name (stable across stores).
  std::map<std::string, uint64_t> socByFunction() const {
    std::map<std::string, uint64_t> Out;
    unsigned Code = static_cast<unsigned>(Outcome::SOC);
    for (const auto &[Fn, Counts] : ByFunction)
      if (Counts[Code])
        Out[functionName(Fn)] += Counts[Code];
    return Out;
  }
};

void printSummary(const StoreIndex &Ix) {
  const RecordStore &S = *Ix.S;
  std::printf("module:   %s\n", S.ModuleName.c_str());
  std::printf("entry:    @%s  label: %s  seed: 0x%llx\n",
              S.EntryFunction.c_str(),
              S.Label.empty() ? "<none>" : S.Label.c_str(),
              static_cast<unsigned long long>(S.Seed));
  std::printf("clean:    %llu steps, %llu value steps\n",
              static_cast<unsigned long long>(S.CleanSteps),
              static_cast<unsigned long long>(S.CleanValueSteps));
  std::printf("store:    %zu instructions, %zu injections",
              S.Instructions.size(), S.Rows.size());
  if (S.PrunedRuns)
    std::printf(" (%llu pruned over %llu sites)",
                static_cast<unsigned long long>(S.PrunedRuns),
                static_cast<unsigned long long>(S.PrunedSites));
  std::printf("\ncoverage: %.1f%% of original instructions protected\n",
              Ix.coveragePct());
  std::printf("outcomes:");
  for (unsigned O = 0; O != NumOutcomes; ++O) {
    uint64_t N = O < S.OutcomeTotals.size() ? S.OutcomeTotals[O] : 0;
    std::printf("  %s %llu", outcomeCodeName(static_cast<uint8_t>(O)),
                static_cast<unsigned long long>(N));
  }
  std::printf("\n");
}

/// The incremental-campaign function table (v2 stores only): how the
/// runs were apportioned, and what each function's reuse decision was.
void printFunctionMetas(const StoreIndex &Ix) {
  const RecordStore &S = *Ix.S;
  if (S.FunctionMetas.empty())
    return;
  std::printf("\n== incremental campaign (per-function reuse) ==\n");
  std::printf("%-16s %-16s %8s %8s %6s  %16s\n", "function", "decision",
              "planned", "reused", "steps", "content-hash");
  for (const obs::FunctionMeta &FM : S.FunctionMetas)
    std::printf("@%-15s %-16s %8llu %8llu %6llu  %016llx\n",
                Ix.functionName(FM.FunctionIndex).c_str(),
                invalidationReasonName(
                    static_cast<InvalidationReason>(FM.Invalidation)),
                static_cast<unsigned long long>(FM.PlannedRuns),
                static_cast<unsigned long long>(FM.ReusedRuns),
                static_cast<unsigned long long>(FM.LocalValueSteps),
                static_cast<unsigned long long>(FM.ContentHash));
}

void printHeatmap(const StoreIndex &Ix, bool WithSource) {
  const RecordStore &S = *Ix.S;
  std::printf("\n== source heatmap (per-line injection outcomes) ==\n");
  // Column order is the report order, not the Outcome enum order.
  const Outcome Cols[] = {Outcome::SOC, Outcome::Crash, Outcome::Hang,
                          Outcome::Detected, Outcome::Masked};
  obs::LineTable T({"soc", "crash", "hang", "detect", "masked"});
  for (const auto &[Line, Counts] : Ix.ByLine)
    for (size_t C = 0; C != std::size(Cols); ++C)
      T.add(Line, C, Counts[static_cast<unsigned>(Cols[C])]);
  T.print(S.SourceText, WithSource);
}

void printConfusion(const StoreIndex &Ix) {
  const RecordStore &S = *Ix.S;
  bool AnyPrediction = false;
  for (const InstrRecord &I : S.Instructions)
    AnyPrediction |= I.Predicted != obs::PredictNone;
  if (!AnyPrediction) {
    std::printf("\n== classifier confusion ==\n(no classifier columns in "
                "this store)\n");
    return;
  }

  // Ground truth is per-instruction: did any injection into it go SOC?
  // Only instructions the campaign actually targeted can be judged.
  struct Miss {
    const InstrRecord *I;
    uint64_t Soc, Runs;
  };
  std::vector<Miss> FalseNeg, FalsePos;
  uint64_t TruePos = 0, TrueNeg = 0;
  for (const InstrRecord &I : S.Instructions) {
    if (I.Predicted == obs::PredictNone)
      continue;
    auto RIt = Ix.RunsById.find(I.Id);
    if (RIt == Ix.RunsById.end())
      continue; // never injected: no ground truth
    auto SIt = Ix.SocById.find(I.Id);
    uint64_t Soc = SIt != Ix.SocById.end() ? SIt->second : 0;
    bool PredictedSoc = I.Predicted == obs::PredictProtect;
    if (Soc && !PredictedSoc)
      FalseNeg.push_back({&I, Soc, RIt->second});
    else if (!Soc && PredictedSoc)
      FalsePos.push_back({&I, Soc, RIt->second});
    else if (Soc)
      ++TruePos;
    else
      ++TrueNeg;
  }
  auto BySoc = [](const Miss &A, const Miss &B) {
    return A.Soc != B.Soc ? A.Soc > B.Soc : A.I->Id < B.I->Id;
  };
  std::sort(FalseNeg.begin(), FalseNeg.end(), BySoc);
  std::sort(FalsePos.begin(), FalsePos.end(),
            [](const Miss &A, const Miss &B) {
              return A.Runs != B.Runs ? A.Runs > B.Runs : A.I->Id < B.I->Id;
            });

  std::printf("\n== classifier confusion (per injected instruction) ==\n");
  std::printf("tp %llu  tn %llu  fn %zu  fp %zu\n",
              static_cast<unsigned long long>(TruePos),
              static_cast<unsigned long long>(TrueNeg), FalseNeg.size(),
              FalsePos.size());
  auto PrintMiss = [&](const char *Kind, const Miss &M) {
    std::printf("  %s id %u %-8s @%s:%u:%u  soc %llu / %llu runs\n", Kind,
                M.I->Id, opcodeName(static_cast<Opcode>(M.I->Opcode)),
                Ix.functionName(M.I->FunctionIndex).c_str(), M.I->Line,
                M.I->Col, static_cast<unsigned long long>(M.Soc),
                static_cast<unsigned long long>(M.Runs));
  };
  for (const Miss &M : FalseNeg)
    PrintMiss("fn", M); // unprotected SOC source: the costly kind of miss
  for (const Miss &M : FalsePos)
    PrintMiss("fp", M);
}

void printTables(const StoreIndex &Ix) {
  unsigned Soc = static_cast<unsigned>(Outcome::SOC);
  auto Total = [](const std::array<uint64_t, NumOutcomes> &C) {
    uint64_t T = 0;
    for (uint64_t N : C)
      T += N;
    return T;
  };

  std::printf("\n== vulnerability by opcode ==\n");
  std::printf("%-10s %8s %6s %6s\n", "opcode", "inject", "soc", "soc%");
  std::vector<std::pair<uint8_t, std::array<uint64_t, NumOutcomes>>> Ops(
      Ix.ByOpcode.begin(), Ix.ByOpcode.end());
  std::sort(Ops.begin(), Ops.end(), [&](const auto &A, const auto &B) {
    return A.second[Soc] != B.second[Soc] ? A.second[Soc] > B.second[Soc]
                                          : A.first < B.first;
  });
  for (const auto &[Op, Counts] : Ops) {
    uint64_t T = Total(Counts);
    std::printf("%-10s %8llu %6llu %5.1f%%\n",
                opcodeName(static_cast<Opcode>(Op)),
                static_cast<unsigned long long>(T),
                static_cast<unsigned long long>(Counts[Soc]),
                T ? 100.0 * static_cast<double>(Counts[Soc]) /
                        static_cast<double>(T)
                  : 0.0);
  }

  std::printf("\n== vulnerability by function ==\n");
  std::printf("%-16s %8s %6s %6s\n", "function", "inject", "soc", "soc%");
  for (const auto &[Fn, Counts] : Ix.ByFunction) {
    uint64_t T = Total(Counts);
    std::printf("@%-15s %8llu %6llu %5.1f%%\n", Ix.functionName(Fn).c_str(),
                static_cast<unsigned long long>(T),
                static_cast<unsigned long long>(Counts[Soc]),
                T ? 100.0 * static_cast<double>(Counts[Soc]) /
                        static_cast<double>(T)
                  : 0.0);
  }
}

/// Joins the .iprec per-opcode vulnerability columns with the .ipprop
/// dynamic masking ground truth: for each opcode, how often did the
/// endpoint campaign go SOC when injecting into it, and how often did
/// the propagation tracer watch that opcode *absorb* corruption
/// (logical masking, clean overwrite, dead value)? Opcodes that absorb
/// a lot should show a low SOC rate — the join makes that visible.
void printMaskingJoin(const StoreIndex &Ix,
                      const obs::PropagationStore &Prop) {
  unsigned Soc = static_cast<unsigned>(Outcome::SOC);
  std::map<uint8_t, std::array<uint64_t, 3>> MaskByOp;
  uint64_t TotalMaskEvents = 0;
  for (const obs::PropRecord &R : Prop.Records)
    for (const obs::PropMaskEvent &M : R.Masks)
      if (M.Kind < 3) {
        MaskByOp[M.Opcode][M.Kind] += M.Count;
        TotalMaskEvents += M.Count;
      }

  std::printf("\n== dynamic masking vs vulnerability by opcode ==\n");
  std::printf("(%zu traced injections, %llu masking events)\n",
              Prop.Records.size(),
              static_cast<unsigned long long>(TotalMaskEvents));
  std::printf("%-10s %8s %6s %6s  %8s %9s %6s %7s\n", "opcode", "inject",
              "soc", "soc%", "logical", "overwrite", "dead", "absorb%");

  // Union of opcodes with injections (iprec) and masking events (ipprop).
  std::map<uint8_t, char> Ops;
  for (const auto &[Op, Counts] : Ix.ByOpcode)
    Ops[Op];
  for (const auto &[Op, Counts] : MaskByOp)
    Ops[Op];
  for (const auto &[Op, Unused] : Ops) {
    (void)Unused;
    uint64_t Inject = 0, SocN = 0;
    auto It = Ix.ByOpcode.find(Op);
    if (It != Ix.ByOpcode.end()) {
      for (uint64_t N : It->second)
        Inject += N;
      SocN = It->second[Soc];
    }
    std::array<uint64_t, 3> M{};
    auto MIt = MaskByOp.find(Op);
    if (MIt != MaskByOp.end())
      M = MIt->second;
    uint64_t Absorbed = M[0] + M[1] + M[2];
    std::printf("%-10s %8llu %6llu %5.1f%%  %8llu %9llu %6llu %6.1f%%\n",
                opcodeName(static_cast<Opcode>(Op)),
                static_cast<unsigned long long>(Inject),
                static_cast<unsigned long long>(SocN),
                Inject ? 100.0 * static_cast<double>(SocN) /
                             static_cast<double>(Inject)
                       : 0.0,
                static_cast<unsigned long long>(M[0]),
                static_cast<unsigned long long>(M[1]),
                static_cast<unsigned long long>(M[2]),
                TotalMaskEvents
                    ? 100.0 * static_cast<double>(Absorbed) /
                          static_cast<double>(TotalMaskEvents)
                    : 0.0);
  }
}

int inspectOne(const std::string &Path, bool WithSource,
               const std::string &MaskingPath) {
  RecordStore S;
  std::string Err;
  if (!obs::readRecordStore(S, Path, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
    return 1;
  }
  StoreIndex Ix(S);
  printSummary(Ix);
  printFunctionMetas(Ix);
  printHeatmap(Ix, WithSource);
  printConfusion(Ix);
  printTables(Ix);
  if (!MaskingPath.empty()) {
    obs::PropagationStore Prop;
    if (!obs::readPropagationStore(Prop, MaskingPath, &Err)) {
      std::fprintf(stderr, "error: %s: %s\n", MaskingPath.c_str(),
                   Err.c_str());
      return 1;
    }
    printMaskingJoin(Ix, Prop);
  }
  return 0;
}

int diffStores(const std::string &OldPath, const std::string &NewPath,
               int64_t Threshold) {
  RecordStore OldS, NewS;
  std::string Err;
  if (!obs::readRecordStore(OldS, OldPath, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", OldPath.c_str(), Err.c_str());
    return 1;
  }
  if (!obs::readRecordStore(NewS, NewPath, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", NewPath.c_str(), Err.c_str());
    return 1;
  }
  StoreIndex OldIx(OldS), NewIx(NewS);

  std::printf("diff: %s -> %s\n", OldPath.c_str(), NewPath.c_str());
  uint64_t OldSoc = OldIx.socTotal(), NewSoc = NewIx.socTotal();
  double OldCov = OldIx.coveragePct(), NewCov = NewIx.coveragePct();
  std::printf("soc:      %llu -> %llu (%+lld)\n",
              static_cast<unsigned long long>(OldSoc),
              static_cast<unsigned long long>(NewSoc),
              static_cast<long long>(NewSoc) -
                  static_cast<long long>(OldSoc));
  std::printf("coverage: %.1f%% -> %.1f%% (%+.1f)\n", OldCov, NewCov,
              NewCov - OldCov);

  // Per-line and per-function SOC deltas (union of keys, zeros implied).
  auto OldLines = OldIx.socByLine(), NewLines = NewIx.socByLine();
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> LineDelta;
  for (const auto &[L, N] : OldLines)
    LineDelta[L].first = N;
  for (const auto &[L, N] : NewLines)
    LineDelta[L].second = N;
  bool AnyLine = false;
  for (const auto &[L, P] : LineDelta) {
    if (P.first == P.second)
      continue;
    if (!AnyLine) {
      std::printf("\n== soc by line ==\n");
      AnyLine = true;
    }
    std::printf("  line %u: %llu -> %llu (%+lld)\n", L,
                static_cast<unsigned long long>(P.first),
                static_cast<unsigned long long>(P.second),
                static_cast<long long>(P.second) -
                    static_cast<long long>(P.first));
  }
  auto OldFns = OldIx.socByFunction(), NewFns = NewIx.socByFunction();
  std::map<std::string, std::pair<uint64_t, uint64_t>> FnDelta;
  for (const auto &[F, N] : OldFns)
    FnDelta[F].first = N;
  for (const auto &[F, N] : NewFns)
    FnDelta[F].second = N;
  bool AnyFn = false;
  for (const auto &[F, P] : FnDelta) {
    if (P.first == P.second)
      continue;
    if (!AnyFn) {
      std::printf("\n== soc by function ==\n");
      AnyFn = true;
    }
    std::printf("  @%s: %llu -> %llu (%+lld)\n", F.c_str(),
                static_cast<unsigned long long>(P.first),
                static_cast<unsigned long long>(P.second),
                static_cast<long long>(P.second) -
                    static_cast<long long>(P.first));
  }

  // Incremental re-campaign report: which functions the new campaign
  // re-executed instead of reusing, and which invalidation keys moved
  // between the two stores. Needs function tables on both sides.
  if (!OldS.FunctionMetas.empty() && !NewS.FunctionMetas.empty()) {
    std::map<std::string, const obs::FunctionMeta *> OldMeta;
    for (const obs::FunctionMeta &FM : OldS.FunctionMetas)
      OldMeta[OldIx.functionName(FM.FunctionIndex)] = &FM;
    std::printf("\n== incremental re-campaigning ==\n");
    size_t Recampaigned = 0;
    for (const obs::FunctionMeta &FM : NewS.FunctionMetas) {
      std::string Name = NewIx.functionName(FM.FunctionIndex);
      auto Reason = static_cast<InvalidationReason>(FM.Invalidation);
      std::string Keys;
      auto It = OldMeta.find(Name);
      if (It == OldMeta.end()) {
        Keys = " [new function]";
      } else {
        const obs::FunctionMeta &OM = *It->second;
        if (OM.ContentHash != FM.ContentHash)
          Keys += " content";
        if (OM.ReachableHash != FM.ReachableHash)
          Keys += " reachable";
        if (OM.LocalValueSteps != FM.LocalValueSteps)
          Keys += " steps";
        if (OM.ProfileHash != FM.ProfileHash)
          Keys += " profile";
        if (!Keys.empty())
          Keys = " [changed keys:" + Keys + "]";
      }
      if (Reason != InvalidationReason::Reused)
        ++Recampaigned;
      std::printf("  @%s: %s, %llu reused / %llu planned%s\n", Name.c_str(),
                  invalidationReasonName(Reason),
                  static_cast<unsigned long long>(FM.ReusedRuns),
                  static_cast<unsigned long long>(FM.PlannedRuns),
                  Keys.c_str());
    }
    std::printf("  %zu of %zu functions re-campaigned\n", Recampaigned,
                NewS.FunctionMetas.size());
  }

  // Regression gate: SOC may grow by at most --threshold injections and
  // coverage may drop by at most --threshold percentage points.
  bool Regressed = false;
  if (NewSoc > OldSoc + static_cast<uint64_t>(Threshold)) {
    std::printf("\nregression: soc count grew %llu -> %llu "
                "(threshold %lld)\n",
                static_cast<unsigned long long>(OldSoc),
                static_cast<unsigned long long>(NewSoc),
                static_cast<long long>(Threshold));
    Regressed = true;
  }
  if (NewCov < OldCov - static_cast<double>(Threshold)) {
    std::printf("%sregression: protection coverage dropped "
                "%.1f%% -> %.1f%% (threshold %lld)\n",
                Regressed ? "" : "\n", OldCov, NewCov,
                static_cast<long long>(Threshold));
    Regressed = true;
  }
  if (Regressed)
    return 7;
  std::printf("\nok: no regression\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Diff = false, NoSource = false;
  int64_t Threshold = 0;
  std::string MaskingPath;
  ArgParser P("ipas-inspect: analyse .iprec campaign record stores");
  P.addBool("diff", &Diff,
            "compare two stores (old new) and fail on regression");
  P.addInt("threshold", &Threshold,
           "allowed soc-count growth / coverage drop (pct points) before "
           "--diff fails");
  P.addBool("no-source", &NoSource,
            "omit source text from the heatmap listing");
  P.addString("masking", &MaskingPath,
              "join the per-opcode vulnerability table against the "
              "dynamic masking rates in this .ipprop store");
  if (!P.parse(Argc, Argv))
    return 2;

  if (Diff) {
    if (P.positionals().size() != 2) {
      std::fprintf(stderr,
                   "usage: ipas-inspect --diff <old.iprec> <new.iprec>\n");
      return 2;
    }
    return diffStores(P.positionals()[0], P.positionals()[1], Threshold);
  }
  if (P.positionals().size() != 1) {
    std::fprintf(stderr, "usage: ipas-inspect <store.iprec> [flags]\n%s",
                 P.usage().c_str());
    return 2;
  }
  return inspectOne(P.positionals()[0], !NoSource, MaskingPath);
}
