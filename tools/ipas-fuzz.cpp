//===- tools/ipas-fuzz.cpp - Differential fuzzing driver ------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Runs the randomized differential-testing campaign (src/testing/):
/// generate seeded UB-free MiniC programs, check them against the five
/// semantic oracles, and delta-debug any failure to a minimal repro.
///
///   ipas-fuzz --seed 1 --count 200                  # all oracles
///   ipas-fuzz --seed 7 --count 50 --oracle O2       # optimizer only
///   ipas-fuzz --seed 1 --count 200 --oracle backend # interp-vs-VM only
///   ipas-fuzz --seed 1 --count 200 --out-dir repro  # save failing .mc
///   ipas-fuzz --emit-seed 42                        # print one program
///   ipas-fuzz --selftest-shrink                     # harness self-test
///   ipas-fuzz --selftest-vm                         # O5 harness self-test
///
/// Exit status: 0 all oracles passed, 1 failures found, 2 usage error.
/// Output is deterministic for a fixed flag set (no timing, no pointers),
/// so CI can diff entire runs.
///
//===----------------------------------------------------------------------===//

#include "obs/CliOptions.h"
#include "support/ArgParser.h"
#include "testing/Fuzzer.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace ipas;
using namespace ipas::testing;

static bool writeFile(const std::filesystem::path &Path,
                      const std::string &Contents) {
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write '%s'\n", Path.c_str());
    return false;
  }
  Out << Contents;
  return true;
}

/// --selftest-shrink: prove the harness catches and minimizes a real
/// miscompile. Injects the canned operand-swap bug into O2's optimized
/// module, scans campaign indices until the bug manifests (a program
/// whose first integer sub is live and asymmetric), shrinks it, and
/// enforces the acceptance bound on the repro size.
static int runShrinkSelftest(uint64_t BaseSeed, const OracleOptions &Base,
                             OracleKind K) {
  OracleOptions Opts = Base;
  if (K == OracleKind::Backend)
    Opts.InjectVmBug = true; // corrupt the compiled bytecode
  else
    Opts.InjectMiscompile = true;
  constexpr uint64_t MaxScan = 64;
  constexpr size_t MaxReproLines = 25;
  for (uint64_t I = 0; I != MaxScan; ++I) {
    GenConfig GC;
    GC.Seed = programSeed(BaseSeed, I);
    GeneratedProgram P = generateProgram(GC);
    OracleResult R = runOracle(K, P.Source, Opts);
    if (R.Passed)
      continue; // swap was dead or symmetric here; try the next program
    ShrinkResult SR = shrinkFailure(P.Source, K, Opts);
    std::printf("selftest: injected %s caught on program %llu "
                "(seed 0x%llx)\n",
                K == OracleKind::Backend ? "vm bug" : "miscompile",
                static_cast<unsigned long long>(I),
                static_cast<unsigned long long>(GC.Seed));
    std::printf("selftest: shrunk %zu -> %zu lines (%u candidates tried, "
                "%u accepted)\n",
                SR.OriginalLines, SR.FinalLines, SR.Attempts, SR.Accepted);
    std::fputs(SR.Source.c_str(), stdout);
    if (SR.FinalLines > MaxReproLines) {
      std::fprintf(stderr,
                   "selftest FAILED: repro is %zu lines (bound %zu)\n",
                   SR.FinalLines, MaxReproLines);
      return 1;
    }
    std::printf("selftest: ok\n");
    return 0;
  }
  std::fprintf(stderr,
               "selftest FAILED: miscompile never manifested in %llu "
               "programs\n",
               static_cast<unsigned long long>(MaxScan));
  return 1;
}

int main(int Argc, char **Argv) {
  int64_t Seed = 1, Count = 200, MaxSteps = -1, EmitSeed = -1;
  std::string OracleSel = "all", OutDir;
  bool NoShrink = false, InjectMiscompile = false, SelftestShrink = false;
  bool InjectVmBug = false, SelftestVm = false;

  ArgParser P("ipas-fuzz: differential testing of the MiniC pipeline");
  P.addInt("seed", &Seed, "campaign base seed");
  P.addInt("count", &Count, "number of programs to generate");
  P.addString("oracle", &OracleSel,
              "oracle to run: O1..O5, a full name or bare suffix "
              "(e.g. 'backend'), or 'all'");
  P.addString("out-dir", &OutDir,
              "directory for failing-program .mc repro files");
  P.addBool("no-shrink", &NoShrink, "report failures without minimizing");
  P.addInt("max-steps", &MaxSteps, "interpreter step budget per run");
  P.addInt("emit-seed", &EmitSeed,
           "print the program generated from this seed and exit");
  P.addBool("inject-miscompile", &InjectMiscompile,
            "deliberately break O2's optimized module (harness check)");
  P.addBool("selftest-shrink", &SelftestShrink,
            "verify the shrinker minimizes an injected miscompile");
  P.addBool("inject-vm-bug", &InjectVmBug,
            "deliberately corrupt O5's compiled bytecode (harness check)");
  P.addBool("selftest-vm", &SelftestVm,
            "verify O5 catches an injected vm bug and the shrinker "
            "minimizes it");
  obs::CliOptions Obs;
  obs::addCliFlags(P, Obs);
  if (!P.parse(Argc, Argv))
    return 2;
  if (!P.positionals().empty()) {
    std::fprintf(stderr, "usage: ipas-fuzz [flags]\n%s", P.usage().c_str());
    return 2;
  }
  if (!obs::applyCliFlags(Obs, "ipas-fuzz",
                          obs::AttrSet().addHex("seed",
                                                static_cast<uint64_t>(Seed))))
    return 2;

  if (EmitSeed >= 0) {
    GenConfig GC;
    GC.Seed = static_cast<uint64_t>(EmitSeed);
    GeneratedProgram Prog = generateProgram(GC);
    std::fputs(Prog.Source.c_str(), stdout);
    return 0;
  }

  FuzzConfig Cfg;
  Cfg.Seed = static_cast<uint64_t>(Seed);
  Cfg.Count = static_cast<uint64_t>(Count);
  Cfg.Shrink = !NoShrink;
  Cfg.Oracles.InjectMiscompile = InjectMiscompile;
  Cfg.Oracles.InjectVmBug = InjectVmBug;
  if (MaxSteps > 0)
    Cfg.Oracles.MaxSteps = static_cast<uint64_t>(MaxSteps);

  if (SelftestShrink)
    return runShrinkSelftest(Cfg.Seed, Cfg.Oracles, OracleKind::Optimizer);
  if (SelftestVm)
    return runShrinkSelftest(Cfg.Seed, Cfg.Oracles, OracleKind::Backend);

  bool IsAll = false;
  OracleKind K = OracleKind::RoundTrip;
  if (parseOracleName(OracleSel, K, IsAll)) {
    Cfg.RunAll = false;
    Cfg.Oracle = K;
  } else if (!IsAll) {
    std::fprintf(stderr, "error: unknown oracle '%s' (use O1..O5 or all)\n",
                 OracleSel.c_str());
    return 2;
  }

  if (!OutDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(OutDir, EC);
    if (EC) {
      std::fprintf(stderr, "error: cannot create out-dir '%s': %s\n",
                   OutDir.c_str(), EC.message().c_str());
      return 2;
    }
  }

  FuzzReport Report = runFuzzCampaign(Cfg);

  for (const FuzzFailure &F : Report.Failures) {
    std::printf("FAIL %s program=%llu seed=0x%llx\n  %s\n",
                oracleName(F.Oracle),
                static_cast<unsigned long long>(F.Index),
                static_cast<unsigned long long>(F.Seed), F.Detail.c_str());
    if (Cfg.Shrink)
      std::printf("  shrunk %zu -> %zu lines; repro:\n%s",
                  F.ShrinkInfo.OriginalLines, F.ShrinkInfo.FinalLines,
                  F.Shrunk.c_str());
    if (!OutDir.empty()) {
      std::filesystem::path Dir(OutDir);
      char Name[64];
      std::snprintf(Name, sizeof(Name), "fail-%llu-%s",
                    static_cast<unsigned long long>(F.Index),
                    oracleName(F.Oracle));
      if (!writeFile(Dir / (std::string(Name) + ".mc"), F.Source) ||
          (Cfg.Shrink &&
           !writeFile(Dir / (std::string(Name) + "-min.mc"), F.Shrunk)))
        return 2;
    }
  }

  std::printf("fuzz: %llu programs, %llu oracle runs, %zu failures "
              "(seed %lld, oracle %s)\n",
              static_cast<unsigned long long>(Report.ProgramsRun),
              static_cast<unsigned long long>(Report.OraclesRun),
              Report.Failures.size(), static_cast<long long>(Seed),
              Cfg.RunAll ? "all" : oracleName(Cfg.Oracle));
  return Report.allPassed() ? 0 : 1;
}
