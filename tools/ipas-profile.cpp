//===- tools/ipas-profile.cpp - Cost-profile analytics -------------------------===//
//
// Part of the IPAS reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// Reads the .ipprof cost-profile stores written by `ipas-cc --profile-out`
/// and the pipeline's ProfileDir and answers the questions a protection
/// overhead raises:
///
///   ipas-profile run.ipprof                    # summary + heatmap + tables
///   ipas-profile run.ipprof --join camp.iprec  # soc vs cycles efficiency
///   ipas-profile ctx.ipprof --folded           # flamegraph folded stacks
///   ipas-profile --diff old.ipprof new.ipprof --threshold 5
///
/// The single-store mode renders an annotated source listing whose
/// per-line count/cycle columns sum exactly to the profiled run's totals,
/// the hottest instructions and functions under the store's cycle model,
/// and — when the store carries protection-overhead attribution — the
/// per-original-site marginal-cost table whose Σ equals the protected-
/// minus-baseline cycle delta exactly.
///
/// --join matches the overhead table against a campaign record store's
/// injection outcomes site by site (shadow/check clones folded back onto
/// their originals), producing the soc-per-kilocycle efficiency frontier
/// a protection budget optimizer consumes.
///
/// The diff mode refuses stores priced with different cycle models and
/// exits nonzero when total cycles or protection overhead grow by more
/// than --threshold percent — wired into CI, it turns silent slowdown
/// regressions into loud ones.
///
//===----------------------------------------------------------------------===//

#include "fault/Outcome.h"
#include "ir/Instruction.h"
#include "obs/LineTable.h"
#include "obs/ProfileStore.h"
#include "obs/RecordStore.h"
#include "support/ArgParser.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace ipas;
using obs::ProfContext;
using obs::ProfileStore;
using obs::ProfInstr;
using obs::ProfSiteOverhead;

namespace {

/// Everything the reports need, indexed once up front.
struct ProfIndex {
  const ProfileStore *S = nullptr;
  /// Line -> (exec count, cycles). Line 0 collects instructions with no
  /// source location, so column sums always equal CleanSteps/TotalCycles.
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> ByLine;
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> ByFunction;
  /// Line -> added protection cycles (overhead stores only).
  std::map<uint32_t, uint64_t> OverheadByLine;
  std::map<uint32_t, const ProfSiteOverhead *> BySite;
  int64_t TotalMarginal = 0;

  explicit ProfIndex(const ProfileStore &Store) : S(&Store) {
    for (const ProfInstr &I : Store.Instructions) {
      auto &L = ByLine[I.Line];
      L.first += I.ExecCount;
      L.second += I.Cycles;
      auto &F = ByFunction[I.FunctionIndex];
      F.first += I.ExecCount;
      F.second += I.Cycles;
    }
    for (const ProfSiteOverhead &O : Store.Overheads) {
      BySite.emplace(O.SiteId, &O);
      int64_t M = obs::marginalCycles(O);
      TotalMarginal += M;
      if (M > 0)
        OverheadByLine[O.Line] += static_cast<uint64_t>(M);
    }
  }

  std::string functionName(uint32_t Index) const {
    if (Index < S->Functions.size())
      return S->Functions[Index];
    return "<fn" + std::to_string(Index) + ">";
  }

  /// "@fn:line:col", or "@fn:?" for instructions with no location.
  std::string location(uint32_t FunctionIndex, uint32_t Line,
                       uint32_t Col) const {
    std::string Out = "@" + functionName(FunctionIndex);
    if (Line)
      Out += ":" + std::to_string(Line) + ":" + std::to_string(Col);
    else
      Out += ":?";
    return Out;
  }

  /// Attribution is conservative-exact by construction; surface any
  /// violation loudly instead of rendering nonsense tables.
  bool overheadExact() const {
    if (!S->HasOverhead)
      return true;
    return TotalMarginal == static_cast<int64_t>(S->TotalCycles) -
                                static_cast<int64_t>(S->BaselineTotalCycles);
  }

  int64_t overheadCycles() const {
    return static_cast<int64_t>(S->TotalCycles) -
           static_cast<int64_t>(S->BaselineTotalCycles);
  }

  /// Per-function cycles keyed by name (stable across stores, for diff).
  std::map<std::string, uint64_t> cyclesByFunction() const {
    std::map<std::string, uint64_t> Out;
    for (const auto &[Fn, CC] : ByFunction)
      if (CC.second)
        Out[functionName(Fn)] += CC.second;
    return Out;
  }
};

const char *modeName(uint8_t Mode) {
  return Mode == obs::ProfileContext ? "context" : "counting";
}

void printSummary(const ProfIndex &Ix) {
  const ProfileStore &S = *Ix.S;
  std::printf("module:   %s\n", S.ModuleName.c_str());
  std::printf("entry:    @%s  label: %s  mode: %s\n",
              S.EntryFunction.c_str(),
              S.Label.empty() ? "<none>" : S.Label.c_str(),
              modeName(S.Mode));
  std::printf("clean:    %llu steps, %llu model cycles\n",
              static_cast<unsigned long long>(S.CleanSteps),
              static_cast<unsigned long long>(S.TotalCycles));
  std::printf("store:    %zu instructions, %zu contexts, %zu line costs\n",
              S.Instructions.size(), S.Contexts.size(), S.LineCosts.size());
  if (S.HasOverhead) {
    int64_t Added = Ix.overheadCycles();
    std::printf("overhead: baseline %llu cycles, %+lld added (%+.1f%%), "
                "%zu sites, attribution %s\n",
                static_cast<unsigned long long>(S.BaselineTotalCycles),
                static_cast<long long>(Added),
                S.BaselineTotalCycles
                    ? 100.0 * static_cast<double>(Added) /
                          static_cast<double>(S.BaselineTotalCycles)
                    : 0.0,
                S.Overheads.size(), Ix.overheadExact() ? "exact" : "BROKEN");
    if (!Ix.overheadExact())
      std::printf("warning:  per-site marginal cycles sum to %lld, not the "
                  "%lld cycle delta\n",
                  static_cast<long long>(Ix.TotalMarginal),
                  static_cast<long long>(Ix.overheadCycles()));
  }
}

void printHotSites(const ProfIndex &Ix) {
  const ProfileStore &S = *Ix.S;
  std::vector<const ProfInstr *> Hot;
  for (const ProfInstr &I : S.Instructions)
    if (I.Cycles)
      Hot.push_back(&I);
  std::sort(Hot.begin(), Hot.end(),
            [](const ProfInstr *A, const ProfInstr *B) {
              return A->Cycles != B->Cycles ? A->Cycles > B->Cycles
                                            : A->Id < B->Id;
            });
  if (Hot.size() > 10)
    Hot.resize(10);

  std::printf("\n== hottest sites (by model cycles) ==\n");
  std::printf("%6s %-10s %-20s %12s %12s %6s\n", "id", "opcode", "location",
              "count", "cycles", "cyc%");
  for (const ProfInstr *I : Hot)
    std::printf("%6u %-10s %-20s %12llu %12llu %5.1f%%\n", I->Id,
                opcodeName(static_cast<Opcode>(I->Opcode)),
                Ix.location(I->FunctionIndex, I->Line, I->Col).c_str(),
                static_cast<unsigned long long>(I->ExecCount),
                static_cast<unsigned long long>(I->Cycles),
                S.TotalCycles ? 100.0 * static_cast<double>(I->Cycles) /
                                    static_cast<double>(S.TotalCycles)
                              : 0.0);
}

void printHeatmap(const ProfIndex &Ix, bool WithSource) {
  const ProfileStore &S = *Ix.S;
  std::printf("\n== source heatmap (per-line cost) ==\n");
  std::vector<std::string> Headers = {"count", "cycles"};
  if (S.HasOverhead)
    Headers.push_back("ovhcyc");
  obs::LineTable T(Headers);
  for (const auto &[Line, CC] : Ix.ByLine) {
    T.add(Line, 0, CC.first);
    T.add(Line, 1, CC.second);
  }
  if (S.HasOverhead)
    for (const auto &[Line, Ovh] : Ix.OverheadByLine)
      T.add(Line, 2, Ovh);
  T.print(S.SourceText, WithSource);
}

void printFunctionTable(const ProfIndex &Ix) {
  const ProfileStore &S = *Ix.S;
  std::printf("\n== cost by function ==\n");
  std::printf("%-16s %12s %12s %6s\n", "function", "count", "cycles",
              "cyc%");
  for (const auto &[Fn, CC] : Ix.ByFunction)
    std::printf("@%-15s %12llu %12llu %5.1f%%\n",
                Ix.functionName(Fn).c_str(),
                static_cast<unsigned long long>(CC.first),
                static_cast<unsigned long long>(CC.second),
                S.TotalCycles ? 100.0 * static_cast<double>(CC.second) /
                                    static_cast<double>(S.TotalCycles)
                              : 0.0);
}

/// The calling-context path of \p Node, root first, ';'-joined (the
/// flamegraph folded-stack convention).
std::string contextPath(const ProfIndex &Ix, uint32_t Node) {
  const ProfileStore &S = *Ix.S;
  std::vector<uint32_t> Chain;
  for (uint32_t C = Node;
       C < S.Contexts.size() && Chain.size() <= S.Contexts.size();
       C = S.Contexts[C].Parent)
    Chain.push_back(S.Contexts[C].FunctionIndex);
  std::string Out;
  for (auto It = Chain.rbegin(); It != Chain.rend(); ++It) {
    if (!Out.empty())
      Out += ";";
    Out += Ix.functionName(*It);
  }
  return Out;
}

void printHotContexts(const ProfIndex &Ix) {
  const ProfileStore &S = *Ix.S;
  if (S.Mode != obs::ProfileContext || S.Contexts.empty())
    return;
  std::vector<const ProfContext *> Hot;
  for (const ProfContext &C : S.Contexts)
    if (C.Cycles)
      Hot.push_back(&C);
  std::sort(Hot.begin(), Hot.end(),
            [](const ProfContext *A, const ProfContext *B) {
              return A->Cycles != B->Cycles ? A->Cycles > B->Cycles
                                            : A->Id < B->Id;
            });
  if (Hot.size() > 10)
    Hot.resize(10);
  std::printf("\n== hottest contexts (exclusive cycles) ==\n");
  std::printf("%12s %12s  %s\n", "cycles", "steps", "call path");
  for (const ProfContext *C : Hot)
    std::printf("%12llu %12llu  %s\n",
                static_cast<unsigned long long>(C->Cycles),
                static_cast<unsigned long long>(C->Steps),
                contextPath(Ix, C->Id).c_str());
}

void printOverheadTable(const ProfIndex &Ix) {
  const ProfileStore &S = *Ix.S;
  if (!S.HasOverhead)
    return;
  std::vector<const ProfSiteOverhead *> Sites;
  size_t ProtectedSites = 0;
  for (const ProfSiteOverhead &O : S.Overheads) {
    if (O.Protected_)
      ++ProtectedSites;
    if (obs::marginalCycles(O) != 0)
      Sites.push_back(&O);
  }
  std::sort(Sites.begin(), Sites.end(),
            [](const ProfSiteOverhead *A, const ProfSiteOverhead *B) {
              int64_t MA = obs::marginalCycles(*A);
              int64_t MB = obs::marginalCycles(*B);
              return MA != MB ? MA > MB : A->SiteId < B->SiteId;
            });
  size_t Shown = std::min<size_t>(Sites.size(), 12);

  std::printf("\n== protection overhead by original site ==\n");
  std::printf("%zu of %zu sites protected; %zu carry overhead, top %zu "
              "shown\n",
              ProtectedSites, S.Overheads.size(), Sites.size(), Shown);
  std::printf("%6s %-10s %-20s %10s %10s %10s %10s\n", "site", "opcode",
              "location", "base", "shadow", "check", "marginal");
  for (size_t N = 0; N != Shown; ++N) {
    const ProfSiteOverhead &O = *Sites[N];
    std::printf("%6u %-10s %-20s %10llu %10llu %10llu %+10lld\n", O.SiteId,
                opcodeName(static_cast<Opcode>(O.Opcode)),
                Ix.location(O.FunctionIndex, O.Line, O.Col).c_str(),
                static_cast<unsigned long long>(O.BaseCycles),
                static_cast<unsigned long long>(O.ShadowCycles),
                static_cast<unsigned long long>(O.CheckCycles),
                static_cast<long long>(obs::marginalCycles(O)));
  }
  std::printf("sum of marginal cycles: %+lld (= protected %llu - baseline "
              "%llu)\n",
              static_cast<long long>(Ix.TotalMarginal),
              static_cast<unsigned long long>(S.TotalCycles),
              static_cast<unsigned long long>(S.BaselineTotalCycles));
}

/// Joins the per-site overhead table with a campaign record store:
/// vulnerability (SOC outcomes per injection site) against cost (marginal
/// protection cycles per site). The .iprec may come from a campaign over
/// the protected build itself (shadow/check clones are folded back onto
/// their originals positionally, mirroring the attribution mapping) or
/// over the matching unprotected build (identity mapping) — in the first
/// case `soc` is the residual SOC that slipped past protection, in the
/// second the vulnerability protection would remove. Sites are ranked by
/// soc per kilocycle: the efficiency frontier a budget optimizer walks.
int printEfficiencyJoin(const ProfIndex &Ix, const std::string &Path) {
  const ProfileStore &S = *Ix.S;
  if (!S.HasOverhead) {
    std::fprintf(stderr,
                 "error: --join: profile has no overhead attribution; "
                 "re-profile a protected build (ipas-cc --protect "
                 "--profile)\n");
    return 1;
  }
  obs::RecordStore R;
  std::string Err;
  if (!obs::readRecordStore(R, Path, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
    return 1;
  }

  // Record-store instruction id -> baseline site id: non-shadow/non-check
  // records, in id order, map positionally onto the overhead table — the
  // same surviving-original mapping the attribution pass used.
  std::vector<const obs::InstrRecord *> Records;
  for (const obs::InstrRecord &I : R.Instructions)
    Records.push_back(&I);
  std::sort(Records.begin(), Records.end(),
            [](const obs::InstrRecord *A, const obs::InstrRecord *B) {
              return A->Id < B->Id;
            });
  std::map<uint32_t, uint32_t> RecToSite;
  uint32_t NextSite = 0;
  for (const obs::InstrRecord *I : Records) {
    if (I->DupRole == static_cast<uint8_t>(DupRole::Shadow) ||
        I->DupRole == static_cast<uint8_t>(DupRole::Check))
      continue;
    auto It = Ix.BySite.find(NextSite);
    if (It == Ix.BySite.end() || It->second->Opcode != I->Opcode) {
      std::fprintf(stderr,
                   "error: --join: record store does not match the "
                   "profiled build (site %u: opcode mismatch or missing "
                   "overhead row)\n",
                   NextSite);
      return 1;
    }
    RecToSite[I->Id] = NextSite++;
  }
  if (NextSite != Ix.BySite.size()) {
    std::fprintf(stderr,
                 "error: --join: record store has %u original sites, "
                 "profile attributes %zu\n",
                 NextSite, Ix.BySite.size());
    return 1;
  }

  // Per-site injection and SOC counts, folded onto baseline site ids.
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> RunsSoc;
  for (const obs::InjectionRow &Row : R.Rows) {
    auto It = RecToSite.find(Row.InstructionId);
    if (It == RecToSite.end())
      continue; // injected into a shadow/check clone: no original site
    auto &RS = RunsSoc[It->second];
    RS.first += 1;
    if (Row.Outcome == static_cast<uint8_t>(Outcome::SOC))
      RS.second += 1;
  }

  struct EffRow {
    const ProfSiteOverhead *O;
    uint64_t Runs, Soc;
    int64_t Marginal;
    double SocPerKc; ///< -1 when no cycles were spent on the site.
  };
  std::vector<EffRow> Table;
  uint64_t TotalSoc = 0;
  for (const ProfSiteOverhead &O : S.Overheads) {
    auto It = RunsSoc.find(O.SiteId);
    uint64_t Runs = It != RunsSoc.end() ? It->second.first : 0;
    uint64_t Soc = It != RunsSoc.end() ? It->second.second : 0;
    TotalSoc += Soc;
    int64_t M = obs::marginalCycles(O);
    if (!Soc && M == 0)
      continue; // neither vulnerable nor costly: nothing to trade
    double Eff = M > 0 ? 1000.0 * static_cast<double>(Soc) /
                             static_cast<double>(M)
                       : -1.0;
    Table.push_back({&O, Runs, Soc, M, Eff});
  }
  std::sort(Table.begin(), Table.end(), [](const EffRow &A,
                                           const EffRow &B) {
    // Free soc first (no cycles spent), then best soc-per-cycle, then
    // cheapest, then stable by site id.
    bool FA = A.SocPerKc < 0 && A.Soc, FB = B.SocPerKc < 0 && B.Soc;
    if (FA != FB)
      return FA;
    if (A.SocPerKc != B.SocPerKc)
      return A.SocPerKc > B.SocPerKc;
    if (A.Marginal != B.Marginal)
      return A.Marginal < B.Marginal;
    return A.O->SiteId < B.O->SiteId;
  });

  std::printf("\n== protection efficiency (soc vs cycles spent) ==\n");
  std::printf("joined campaign: %s (%zu injections, %llu soc at original "
              "sites)\n",
              R.Label.empty() ? "<none>" : R.Label.c_str(), R.Rows.size(),
              static_cast<unsigned long long>(TotalSoc));
  std::printf("%6s %-10s %-20s %4s %8s %6s %10s %9s\n", "site", "opcode",
              "location", "prot", "inject", "soc", "marginal", "soc/kcyc");
  for (const EffRow &E : Table) {
    const ProfSiteOverhead &O = *E.O;
    std::printf("%6u %-10s %-20s %4s %8llu %6llu %+10lld ", O.SiteId,
                opcodeName(static_cast<Opcode>(O.Opcode)),
                Ix.location(O.FunctionIndex, O.Line, O.Col).c_str(),
                O.Protected_ ? "yes" : "no",
                static_cast<unsigned long long>(E.Runs),
                static_cast<unsigned long long>(E.Soc),
                static_cast<long long>(E.Marginal));
    // Zero marginal cycles: protection that cost nothing ("free"), or an
    // unprotected site whose protection cost is not yet measured ("-").
    if (E.SocPerKc < 0)
      std::printf("%9s\n", O.Protected_ ? "free" : "-");
    else
      std::printf("%9.3f\n", E.SocPerKc);
  }
  std::printf("total: %llu soc, %+lld marginal cycles over %zu listed "
              "sites\n",
              static_cast<unsigned long long>(TotalSoc),
              static_cast<long long>(Ix.TotalMarginal), Table.size());
  return 0;
}

int profileOne(const std::string &Path, bool WithSource,
               const std::string &JoinPath) {
  ProfileStore S;
  std::string Err;
  if (!obs::readProfileStore(S, Path, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
    return 1;
  }
  ProfIndex Ix(S);
  printSummary(Ix);
  printHotSites(Ix);
  printHeatmap(Ix, WithSource);
  printFunctionTable(Ix);
  printHotContexts(Ix);
  printOverheadTable(Ix);
  if (!JoinPath.empty())
    return printEfficiencyJoin(Ix, JoinPath);
  return 0;
}

/// Flamegraph folded-stack output: one "fn;fn;fn cycles" line per
/// calling context with nonzero exclusive cycles. Pipe into any
/// flamegraph renderer.
int foldedStacks(const std::string &Path) {
  ProfileStore S;
  std::string Err;
  if (!obs::readProfileStore(S, Path, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", Path.c_str(), Err.c_str());
    return 1;
  }
  if (S.Mode != obs::ProfileContext || S.Contexts.empty()) {
    std::fprintf(stderr,
                 "error: %s: no calling-context data (counting-mode "
                 "store); re-profile with --profile-context\n",
                 Path.c_str());
    return 1;
  }
  ProfIndex Ix(S);
  for (const ProfContext &C : S.Contexts) {
    if (!C.Cycles)
      continue;
    std::printf("%s %llu\n", contextPath(Ix, C.Id).c_str(),
                static_cast<unsigned long long>(C.Cycles));
  }
  return 0;
}

int diffStores(const std::string &OldPath, const std::string &NewPath,
               int64_t Threshold) {
  ProfileStore OldS, NewS;
  std::string Err;
  if (!obs::readProfileStore(OldS, OldPath, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", OldPath.c_str(), Err.c_str());
    return 1;
  }
  if (!obs::readProfileStore(NewS, NewPath, &Err)) {
    std::fprintf(stderr, "error: %s: %s\n", NewPath.c_str(), Err.c_str());
    return 1;
  }
  if (OldS.CostModelCycles != NewS.CostModelCycles) {
    std::fprintf(stderr,
                 "error: stores were priced with different cycle models; "
                 "cycle totals are not comparable\n");
    return 1;
  }
  ProfIndex OldIx(OldS), NewIx(NewS);

  auto PctGrowth = [](uint64_t Old, uint64_t New) {
    if (!Old)
      return New ? 1e9 : 0.0;
    return 100.0 * (static_cast<double>(New) - static_cast<double>(Old)) /
           static_cast<double>(Old);
  };

  std::printf("diff: %s -> %s\n", OldPath.c_str(), NewPath.c_str());
  std::printf("steps:    %llu -> %llu (%+lld)\n",
              static_cast<unsigned long long>(OldS.CleanSteps),
              static_cast<unsigned long long>(NewS.CleanSteps),
              static_cast<long long>(NewS.CleanSteps) -
                  static_cast<long long>(OldS.CleanSteps));
  double CycGrowth = PctGrowth(OldS.TotalCycles, NewS.TotalCycles);
  std::printf("cycles:   %llu -> %llu (%+.1f%%)\n",
              static_cast<unsigned long long>(OldS.TotalCycles),
              static_cast<unsigned long long>(NewS.TotalCycles), CycGrowth);
  bool BothOverhead = OldS.HasOverhead && NewS.HasOverhead;
  double OvhGrowth = 0.0;
  if (BothOverhead) {
    int64_t OldOvh = OldIx.overheadCycles(), NewOvh = NewIx.overheadCycles();
    OvhGrowth = PctGrowth(OldOvh > 0 ? static_cast<uint64_t>(OldOvh) : 0,
                          NewOvh > 0 ? static_cast<uint64_t>(NewOvh) : 0);
    std::printf("overhead: %+lld -> %+lld cycles (%+.1f%%)\n",
                static_cast<long long>(OldOvh),
                static_cast<long long>(NewOvh), OvhGrowth);
  }

  // Per-function cycle deltas (union of names, zeros implied).
  auto OldFns = OldIx.cyclesByFunction(), NewFns = NewIx.cyclesByFunction();
  std::map<std::string, std::pair<uint64_t, uint64_t>> FnDelta;
  for (const auto &[F, N] : OldFns)
    FnDelta[F].first = N;
  for (const auto &[F, N] : NewFns)
    FnDelta[F].second = N;
  bool AnyFn = false;
  for (const auto &[F, P] : FnDelta) {
    if (P.first == P.second)
      continue;
    if (!AnyFn) {
      std::printf("\n== cycles by function ==\n");
      AnyFn = true;
    }
    std::printf("  @%s: %llu -> %llu (%+lld)\n", F.c_str(),
                static_cast<unsigned long long>(P.first),
                static_cast<unsigned long long>(P.second),
                static_cast<long long>(P.second) -
                    static_cast<long long>(P.first));
  }

  // Regression gate: total cycles and protection overhead may each grow
  // by at most --threshold percent.
  double Allowed = static_cast<double>(Threshold);
  bool Regressed = false;
  if (CycGrowth > Allowed) {
    std::printf("\nregression: total cycles grew %+.1f%% "
                "(threshold %lld%%)\n",
                CycGrowth, static_cast<long long>(Threshold));
    Regressed = true;
  }
  if (BothOverhead && OvhGrowth > Allowed) {
    std::printf("%sregression: protection overhead grew %+.1f%% "
                "(threshold %lld%%)\n",
                Regressed ? "" : "\n", OvhGrowth,
                static_cast<long long>(Threshold));
    Regressed = true;
  }
  if (Regressed)
    return 7;
  std::printf("\nok: no cost regression\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  bool Diff = false, NoSource = false, Folded = false;
  int64_t Threshold = 0;
  std::string JoinPath;
  ArgParser P("ipas-profile: analyse .ipprof cost-profile stores");
  P.addBool("diff", &Diff,
            "compare two stores (old new) and fail on cost regression");
  P.addInt("threshold", &Threshold,
           "allowed total-cycle / overhead growth in percent before "
           "--diff fails");
  P.addBool("no-source", &NoSource,
            "omit source text from the cost heatmap");
  P.addBool("folded", &Folded,
            "emit flamegraph folded stacks (context-mode stores only)");
  P.addString("join", &JoinPath,
              "join the per-site overhead table against the injection "
              "outcomes in this .iprec store (soc per cycle spent)");
  if (!P.parse(Argc, Argv))
    return 2;

  if (Diff) {
    if (P.positionals().size() != 2) {
      std::fprintf(
          stderr, "usage: ipas-profile --diff <old.ipprof> <new.ipprof>\n");
      return 2;
    }
    return diffStores(P.positionals()[0], P.positionals()[1], Threshold);
  }
  if (P.positionals().size() != 1) {
    std::fprintf(stderr, "usage: ipas-profile <store.ipprof> [flags]\n%s",
                 P.usage().c_str());
    return 2;
  }
  if (Folded)
    return foldedStacks(P.positionals()[0]);
  return profileOne(P.positionals()[0], !NoSource, JoinPath);
}
